#include "eargm/eargm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ear::eargm {

EargmManager::EargmManager(EargmConfig cfg,
                           std::vector<eard::NodeDaemon*> daemons)
    : cfg_(cfg),
      daemons_(std::move(daemons)),
      last_known_w_(daemons_.size(), 0.0),
      missed_by_node_(daemons_.size(), 0) {
  EAR_CHECK_MSG(cfg_.cluster_budget.value > 0.0,
                "cluster budget must be positive");
  EAR_CHECK_MSG(!daemons_.empty(), "EARGM needs at least one node");
  EAR_CHECK_MSG(cfg_.release_margin < cfg_.trigger_margin,
                "release margin must sit below the trigger margin");
}

void EargmManager::set_budget(common::Power cluster_budget) {
  EAR_CHECK_MSG(std::isfinite(cluster_budget.value) &&
                    cluster_budget.value > 0.0,
                "cluster budget must be positive");
  cfg_.cluster_budget = cluster_budget;
}

std::size_t EargmManager::currently_missing_nodes() const {
  std::size_t out = 0;
  for (std::size_t misses : missed_by_node_) out += misses > 0 ? 1 : 0;
  return out;
}

std::size_t EargmManager::consecutive_missed(std::size_t n) const {
  EAR_CHECK_MSG(n < missed_by_node_.size(), "node index out of range");
  return missed_by_node_[n];
}

void EargmManager::apply_limit() {
  for (eard::NodeDaemon* d : daemons_) d->set_pstate_limit(limit_);
}

void EargmManager::update(std::span<const double> node_power_w) {
  EAR_CHECK_MSG(node_power_w.size() == daemons_.size(),
                "one power reading per managed node");
  double total = 0.0;
  std::size_t missing = 0;
  for (std::size_t n = 0; n < node_power_w.size(); ++n) {
    double w = node_power_w[n];
    if (!std::isfinite(w)) {
      // Missing report: hold the node's last known power instead of
      // poisoning the aggregate (NaN) or under-counting it (0).
      ++missing;
      ++missed_by_node_[n];
      w = last_known_w_[n];
    } else {
      if (missed_by_node_[n] > 0) {
        // The node is back: close its outage so reports distinguish an
        // ongoing dropout from one long-recovered.
        missed_by_node_[n] = 0;
        ++resumed_;
      }
      last_known_w_[n] = w;
    }
    total += w;
  }
  missed_readings_ += missing;
  last_total_w_ = total;
  if (missing == node_power_w.size()) {
    ++blind_rounds_;
    last_round_blind_ = true;
    EAR_LOG_WARN("eargm", "no node reported this round; holding limit p%zu",
                 limit_);
    return;
  }
  last_round_blind_ = false;

  if (total > cfg_.cluster_budget.value * cfg_.trigger_margin) {
    if (limit_ < cfg_.deepest_limit) {
      ++limit_;
      ++throttles_;
      apply_limit();
      EAR_LOG_DEBUG("eargm", "over budget (%.0fW > %.0fW): limit -> p%zu",
                    total, cfg_.cluster_budget.value, limit_);
    }
  } else if (limit_ > 0 &&
             total < cfg_.cluster_budget.value * cfg_.release_margin) {
    --limit_;
    ++releases_;
    apply_limit();
    EAR_LOG_DEBUG("eargm", "under budget (%.0fW): limit -> p%zu", total,
                  limit_);
  }
}

}  // namespace ear::eargm
