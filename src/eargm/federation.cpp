#include "eargm/federation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ear::eargm {

FederatedEargm::FederatedEargm(
    FederationConfig cfg, std::vector<std::vector<eard::NodeDaemon*>> islands)
    : cfg_(cfg) {
  EAR_CHECK_MSG(std::isfinite(cfg_.facility_budget.value) &&
                    cfg_.facility_budget.value > 0.0,
                "facility budget must be positive");
  EAR_CHECK_MSG(!islands.empty(), "federation needs at least one island");
  EAR_CHECK_MSG(cfg_.floor_share > 0.0 && cfg_.floor_share <= 1.0,
                "floor share must be in (0, 1]");

  // Until the first readings arrive there is no demand signal, so the
  // facility cap starts as an even split.
  const double even = cfg_.facility_budget.value /
                      static_cast<double>(islands.size());
  for (auto& group : islands) {
    EAR_CHECK_MSG(!group.empty(), "island has no nodes");
    EargmConfig island_cfg = cfg_.island;
    island_cfg.cluster_budget = common::Power{even};
    sizes_.push_back(group.size());
    total_nodes_ += group.size();
    budgets_w_.push_back(even);
    last_known_island_w_.push_back(0.0);
    islands_.push_back(
        std::make_unique<EargmManager>(island_cfg, std::move(group)));
  }
}

const EargmManager& FederatedEargm::island(std::size_t i) const {
  EAR_CHECK_MSG(i < islands_.size(), "island index out of range");
  return *islands_[i];
}

common::Power FederatedEargm::island_budget(std::size_t i) const {
  EAR_CHECK_MSG(i < budgets_w_.size(), "island index out of range");
  return {budgets_w_[i]};
}

std::size_t FederatedEargm::island_blind_rounds() const {
  std::size_t out = 0;
  for (const auto& m : islands_) out += m->blind_rounds();
  return out;
}

std::size_t FederatedEargm::total_missed_readings() const {
  std::size_t out = 0;
  for (const auto& m : islands_) out += m->missed_readings();
  return out;
}

std::size_t FederatedEargm::total_resumed_nodes() const {
  std::size_t out = 0;
  for (const auto& m : islands_) out += m->resumed_nodes();
  return out;
}

std::size_t FederatedEargm::total_throttle_events() const {
  std::size_t out = 0;
  for (const auto& m : islands_) out += m->throttle_events();
  return out;
}

std::size_t FederatedEargm::total_release_events() const {
  std::size_t out = 0;
  for (const auto& m : islands_) out += m->release_events();
  return out;
}

void FederatedEargm::update(std::span<const double> node_power_w) {
  EAR_CHECK_MSG(node_power_w.size() == total_nodes_,
                "one power reading per facility node");
  // Island tier: each manager steps its limit against the budget the
  // cluster tier assigned it last round (causal — this round's demand
  // shapes next round's split).
  std::size_t offset = 0;
  std::size_t blind = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    islands_[i]->update(node_power_w.subspan(offset, sizes_[i]));
    offset += sizes_[i];
    if (islands_[i]->last_round_blind()) {
      // The island went completely dark: the cluster tier carries its
      // last known aggregate forward, mirroring the node-tier rule.
      ++blind;
    } else {
      last_known_island_w_[i] = islands_[i]->last_aggregate().value;
    }
    total += last_known_island_w_[i];
  }
  facility_w_ = total;

  if (blind == islands_.size()) {
    ++facility_blind_rounds_;
    EAR_LOG_WARN("eargm", "all %zu islands dark; holding budget split",
                 islands_.size());
  } else {
    redistribute();
  }
  ++rounds_;
  if (round_hook_) round_hook_(rounds_, common::Power{facility_w_});
}

void FederatedEargm::redistribute() {
  const double budget = cfg_.facility_budget.value;
  const double floor = cfg_.floor_share * budget /
                       static_cast<double>(islands_.size());
  const double pool = budget - floor * static_cast<double>(islands_.size());
  double demand = 0.0;
  for (double w : last_known_island_w_) demand += w;

  bool moved = false;
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    // Demand-proportional share on top of the floor; before any demand
    // signal exists (or a fully idle facility) the pool splits evenly.
    const double share =
        demand > 0.0 ? last_known_island_w_[i] / demand
                     : 1.0 / static_cast<double>(islands_.size());
    const double next = floor + pool * share;
    if (std::fabs(next - budgets_w_[i]) > 1e-9) moved = true;
    budgets_w_[i] = next;
    islands_[i]->set_budget(common::Power{next});
  }
  if (moved) ++redists_;
}

}  // namespace ear::eargm
