// Hierarchical EARGM federation: node -> island -> cluster.
//
// A facility is too large for one manager to poll every node, so the
// control plane is tiered the way production EAR deployments (and
// facility power managers like Cuttlefish, arXiv 2110.00617) are: each
// *island* — a homogeneous partition sharing a node type — runs its own
// EargmManager over its nodes, and a cluster-tier manager splits the
// facility-wide cap into per-island budgets every round, following each
// island's measured demand.
//
// The NaN-tolerant hold semantics apply at every tier:
//   * node tier   — a missing node reading is substituted with the
//     node's last known power (EargmManager::update).
//   * island tier — an island whose nodes ALL went dark holds its
//     P-state limit for the round (blind-round hold), and the cluster
//     tier substitutes the island's last known aggregate.
//   * cluster tier — if EVERY island is blind the facility holds the
//     current budget split; redistributing on zero information would
//     thrash the caps for no reason.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "eargm/eargm.hpp"

namespace ear::eargm {

struct FederationConfig {
  /// Total facility power cap, split across the islands.
  common::Power facility_budget{0.0};
  /// Island-tier control template. cluster_budget is ignored — the
  /// cluster tier overwrites each island's budget every round.
  EargmConfig island{};
  /// Fraction of the facility budget split evenly as a guaranteed
  /// per-island floor; the remainder follows last-known island demand.
  /// The floor keeps a momentarily idle island from being starved to a
  /// zero budget it could never climb back out of.
  double floor_share = 0.25;
};

class FederatedEargm {
 public:
  /// One daemon group per island; groups are concatenated in island
  /// order to form the facility-wide reading layout for update().
  FederatedEargm(FederationConfig cfg,
                 std::vector<std::vector<eard::NodeDaemon*>> islands);

  /// One facility control round: `node_power_w` holds per-node average
  /// power, island-major (island 0's nodes first, then island 1's, ...).
  /// NaN = the reading never arrived. Island managers step their limits
  /// against their current budgets, then the cluster tier redistributes
  /// the facility cap from the islands' (last known) aggregates for the
  /// next round.
  void update(std::span<const double> node_power_w);

  [[nodiscard]] std::size_t islands() const { return islands_.size(); }
  [[nodiscard]] std::size_t total_nodes() const { return total_nodes_; }
  [[nodiscard]] const EargmManager& island(std::size_t i) const;
  [[nodiscard]] common::Power island_budget(std::size_t i) const;
  /// Facility aggregate from the last round, with substitutions.
  [[nodiscard]] common::Power facility_power() const {
    return {facility_w_};
  }
  [[nodiscard]] common::Power budget() const { return cfg_.facility_budget; }
  /// Rounds where at least one island budget moved.
  [[nodiscard]] std::size_t redistributions() const { return redists_; }
  /// Rounds where every island was dark and the split was held.
  [[nodiscard]] std::size_t facility_blind_rounds() const {
    return facility_blind_rounds_;
  }
  /// Island-rounds dark (summed over islands).
  [[nodiscard]] std::size_t island_blind_rounds() const;
  /// Facility-wide NaN substitutions (summed over island managers).
  [[nodiscard]] std::size_t total_missed_readings() const;
  /// Facility-wide node recovery events.
  [[nodiscard]] std::size_t total_resumed_nodes() const;
  [[nodiscard]] std::size_t total_throttle_events() const;
  [[nodiscard]] std::size_t total_release_events() const;

  /// Control rounds completed (update() calls).
  [[nodiscard]] std::size_t rounds() const { return rounds_; }

  /// Round-boundary hook: invoked at the end of every update() with the
  /// number of completed rounds and the substituted facility aggregate.
  /// The event-driven facility core registers one to schedule the next
  /// EARGM-round barrier event — the federation drives its own cadence
  /// instead of being polled every tick. At most one hook; pass an empty
  /// function to clear it.
  using RoundHook = std::function<void(std::size_t rounds_completed,
                                       common::Power facility_power)>;
  void set_round_hook(RoundHook hook) { round_hook_ = std::move(hook); }

 private:
  void redistribute();

  FederationConfig cfg_;
  std::vector<std::unique_ptr<EargmManager>> islands_;
  std::vector<std::size_t> sizes_;
  // The cap re-split is a serial reduction over the islands' last-known
  // aggregates; neither vector may be touched from a parallel region
  // (facility rounds fan node stepping out over a pool).
  EAR_REDUCED_SERIAL std::vector<double> budgets_w_;
  EAR_REDUCED_SERIAL std::vector<double> last_known_island_w_;
  std::size_t total_nodes_ = 0;
  double facility_w_ = 0.0;
  std::size_t redists_ = 0;
  std::size_t facility_blind_rounds_ = 0;
  std::size_t rounds_ = 0;
  RoundHook round_hook_;
};

}  // namespace ear::eargm
