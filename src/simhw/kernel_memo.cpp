#include "simhw/kernel_memo.hpp"

#include <algorithm>

namespace ear::simhw {

IterationMemo::IterationMemo(const NodeConfig& cfg) {
  cpu_khz_.reserve(cfg.pstates.size());
  for (const Freq f : cfg.pstates.all()) cpu_khz_.push_back(f.as_khz());

  // The EAR-style ladder is turbo, nominal, then fixed decrements; when
  // that holds (it does for every shipped table) the cpu index is pure
  // arithmetic. Odd custom tables fall back to a linear scan.
  if (cpu_khz_.size() >= 3) {
    const std::uint64_t step = cpu_khz_[1] - cpu_khz_[2];
    cpu_uniform_ = step > 0;
    for (std::size_t i = 2; cpu_uniform_ && i + 1 < cpu_khz_.size(); ++i) {
      cpu_uniform_ = cpu_khz_[i] - cpu_khz_[i + 1] == step;
    }
    cpu_step_khz_ = step;
  }

  imc_min_khz_ = cfg.uncore.min().as_khz();
  imc_step_khz_ = cfg.uncore.step().as_khz();
  imc_steps_ = cfg.uncore.num_steps();
  table_.assign(cpu_khz_.size() * imc_steps_, std::nullopt);
}

std::size_t IterationMemo::cpu_index(Freq f) const {
  const std::uint64_t khz = f.as_khz();
  if (cpu_khz_.empty()) return npos;
  if (khz == cpu_khz_[0]) return 0;
  if (cpu_uniform_) {
    if (khz > cpu_khz_[1]) return npos;
    const std::uint64_t diff = cpu_khz_[1] - khz;
    if (diff % cpu_step_khz_ != 0) return npos;
    const std::size_t idx = 1 + diff / cpu_step_khz_;
    return idx < cpu_khz_.size() ? idx : npos;
  }
  const auto it = std::find(cpu_khz_.begin(), cpu_khz_.end(), khz);
  return it == cpu_khz_.end()
             ? npos
             : static_cast<std::size_t>(it - cpu_khz_.begin());
}

std::size_t IterationMemo::imc_index(Freq f) const {
  const std::uint64_t khz = f.as_khz();
  if (khz < imc_min_khz_ || imc_step_khz_ == 0) return npos;
  const std::uint64_t diff = khz - imc_min_khz_;
  if (diff % imc_step_khz_ != 0) return npos;
  const std::size_t idx = diff / imc_step_khz_;
  return idx < imc_steps_ ? idx : npos;
}

PerfResult IterationMemo::evaluate(const NodeConfig& cfg,
                                   const WorkDemand& demand, Freq f_cpu,
                                   Freq f_imc) {
  const std::size_t ci = cpu_index(f_cpu);
  const std::size_t mi = imc_index(f_imc);
  if (ci == npos || mi == npos) {
    if (offgrid_valid_ && offgrid_cpu_khz_ == f_cpu.as_khz() &&
        offgrid_imc_khz_ == f_imc.as_khz() && offgrid_demand_ == demand) {
      ++hits_;
      return offgrid_result_;
    }
    ++misses_;
    offgrid_result_ = evaluate_iteration(cfg, demand, f_cpu, f_imc);
    offgrid_cpu_khz_ = f_cpu.as_khz();
    offgrid_imc_khz_ = f_imc.as_khz();
    offgrid_demand_ = demand;
    offgrid_valid_ = true;
    return offgrid_result_;
  }
  if (!demand_valid_ || !(demand == demand_)) {
    std::fill(table_.begin(), table_.end(), std::nullopt);
    demand_ = demand;
    demand_valid_ = true;
  }
  auto& slot = table_[ci * imc_steps_ + mi];
  if (!slot) {
    ++misses_;
    slot = evaluate_iteration(cfg, demand, f_cpu, f_imc);
  } else {
    ++hits_;
  }
  return *slot;
}

}  // namespace ear::simhw
