// RAPL energy counter emulation.
//
// Real RAPL exposes 32-bit counters in units of 2^-ESU joules (ESU = 14 on
// Skylake, i.e. ~61 uJ) that wrap around every few hundred kJ. We keep that
// behaviour: consumers must compute wrap-aware deltas, and the library's
// accounting layer is tested against wraps — a classic field bug in energy
// tooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace ear::simhw {

using common::Joules;
using common::Watts;

/// One wrapping RAPL energy counter (PKG or DRAM domain).
class RaplCounter {
 public:
  /// Skylake energy-status unit: 2^-14 J.
  static constexpr double kJoulesPerUnit = 1.0 / 16384.0;
  static constexpr std::uint64_t kWrap = 1ULL << 32;

  /// Accumulate energy into the counter (simulator side).
  void deposit(Joules e);

  /// Raw 32-bit register value as MSR reads would return it.
  [[nodiscard]] std::uint32_t raw() const {
    return static_cast<std::uint32_t>(units_ % kWrap);
  }

  /// Wrap-aware difference between two raw readings, in joules.
  [[nodiscard]] static Joules delta(std::uint32_t before,
                                    std::uint32_t after);

 private:
  std::uint64_t units_ = 0;  // unwrapped, internal only
  double residue_ = 0.0;     // sub-unit remainder
};

/// The RAPL domains EAR reads per node: PKG per socket plus DRAM.
class RaplDomains {
 public:
  explicit RaplDomains(std::size_t sockets) : pkg_(sockets) {}

  void deposit_pkg(std::size_t socket, Joules e);
  void deposit_dram(Joules e);

  [[nodiscard]] std::size_t sockets() const { return pkg_.size(); }
  [[nodiscard]] const RaplCounter& pkg(std::size_t socket) const;
  [[nodiscard]] const RaplCounter& dram() const { return dram_; }

 private:
  std::vector<RaplCounter> pkg_;
  RaplCounter dram_;
};

}  // namespace ear::simhw
