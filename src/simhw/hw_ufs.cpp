#include "simhw/hw_ufs.hpp"

namespace ear::simhw {

Freq hw_ufs_steady_target(const NodeConfig& cfg, const HwUfsParams& params,
                          const UfsInputs& in) {
  const UncoreRange& range = cfg.uncore;
  if (in.active_cores == 0) return range.min();

  const bool avx_throttled =
      in.effective_core_freq + params.avx_throttle_min <=
      in.requested_core_freq;

  // Rule 2: memory-bound sockets keep the fabric at full speed. The AVX
  // licence case is excluded: when the vector units throttle the cores the
  // loop follows the core clock down (the DGEMM behaviour in Table IV).
  if (!avx_throttled && in.bw_utilisation >= params.high_bw_threshold) {
    return range.max();
  }

  // Rule 3: a fast (nominal/turbo) effective core clock pins the fabric
  // at full speed regardless of memory traffic — the conservative HW
  // behaviour the paper's motivation section documents.
  if (in.effective_core_freq + params.high_freq_margin >=
      cfg.pstates.nominal()) {
    return range.max();
  }

  // Rule 4: even below the threshold, a scalar socket with ordinary
  // activity keeps the maximum (the paper's Table VI: POP/DUMSES/AFiD/
  // HPCG hold IMC ~2.39 with the CPU at 1.8-2.2 GHz). The loop only
  // follows the cores down in three situations: active licence
  // throttling, a near-idle socket (GPU busy-wait), or wide relaxed MPI
  // waits where cores keep dipping into C-states.
  const bool near_idle = in.active_cores <= params.low_activity_cores &&
                         in.bw_utilisation < params.low_bw_threshold;
  const bool wide_relaxed =
      in.relaxed_fraction > params.relaxed_threshold &&
      in.bw_utilisation < params.relaxed_bw_threshold;
  if (!avx_throttled && !near_idle && !wide_relaxed) return range.max();

  // Rule 5: track the activity-weighted core clock (relaxed MPI waits
  // discount it, dense spinning does not), with extra drops for the two
  // idle-ish cases.
  const double weight = 1.0 - params.relaxed_weight * in.relaxed_fraction;
  const Freq f_act = Freq::khz(static_cast<std::uint64_t>(
      static_cast<double>(in.effective_core_freq.as_khz()) * weight));
  Freq target = f_act - params.track_offset;
  if (near_idle) {
    target = target - params.low_activity_drop;
  } else if (wide_relaxed) {
    target = target - params.relaxed_drop;
  }
  if (in.epb >= params.epb_powersave_threshold) {
    target = range.step_down(target);
  }
  return range.clamp(target);
}

HwUfsGovernor::HwUfsGovernor(const NodeConfig& cfg, HwUfsParams params,
                             std::uint64_t seed)
    : cfg_(&cfg), params_(params), rng_(seed), current_(cfg.uncore.max()) {}

Freq HwUfsGovernor::evaluate(const UfsInputs& in,
                             const UncoreRatioLimit& limit) {
  evaluate_periods(in, limit, 1);
  return current_;
}

double HwUfsGovernor::evaluate_periods(const UfsInputs& in,
                                       const UncoreRatioLimit& limit,
                                       std::size_t periods) {
  if (periods == 0) return 0.0;
  const UncoreRange& range = cfg_->uncore;
  const Freq target = hw_ufs_steady_target(*cfg_, params_, in);

  // Respect the MSR window (this is how explicit UFS overrides the loop).
  const Freq lo = range.clamp(limit.min_freq);
  const Freq hi = range.clamp(limit.max_freq);
  const auto window = [&](Freq f) {
    if (f < lo) f = lo;
    if (f > hi) f = hi;
    return f;
  };

  // Only two outcomes exist per period: the steady target, or — when the
  // dither gate can open — one bin below it (the real loop hunts around
  // its setpoint, which is what makes measured averages land just below
  // the limit, 2.39 vs 2.40). Precompute both windowed values; each
  // period is then one rng draw and a select. A probability of zero (or
  // less) can never flip a selection, so it closes the gate outright and
  // the rng is left untouched — dither-free configurations are exactly
  // as deterministic as the no-headroom case.
  const Freq steady = window(target);
  const bool can_dither =
      target > range.min() && params_.dither_probability > 0.0;

  // kHz values are integers well below 2^53 and at most a few hundred are
  // summed, so every partial sum is exact and the total is bitwise
  // identical to the per-period accumulation this replaces.
  double sum_khz = 0.0;
  if (!can_dither) {
    // evaluate() consumes no draw in this case; neither do we.
    sum_khz = static_cast<double>(steady.as_khz()) *
              static_cast<double>(periods);
    current_ = steady;
    return sum_khz;
  }
  const Freq dithered = window(range.step_down(target));
  Freq last = steady;
  for (std::size_t i = 0; i < periods; ++i) {
    last = rng_.uniform() < params_.dither_probability ? dithered : steady;
    sum_khz += static_cast<double>(last.as_khz());
  }
  current_ = last;
  return sum_khz;
}

UfsStretchSummary HwUfsGovernor::integrate_stretch(
    const UfsInputs& in, const UncoreRatioLimit& limit) {
  const UncoreRange& range = cfg_->uncore;
  const Freq target = hw_ufs_steady_target(*cfg_, params_, in);
  const Freq lo = range.clamp(limit.min_freq);
  const Freq hi = range.clamp(limit.max_freq);
  const auto window = [&](Freq f) {
    if (f < lo) f = lo;
    if (f > hi) f = hi;
    return f;
  };
  UfsStretchSummary out;
  out.steady = window(target);
  out.can_dither = target > range.min() && params_.dither_probability > 0.0;
  out.dithered =
      out.can_dither ? window(range.step_down(target)) : out.steady;
  current_ = out.steady;
  return out;
}

Freq HwUfsGovernor::settle_idle(const UncoreRatioLimit& limit) {
  // hw_ufs_steady_target with active_cores == 0 returns range.min()
  // before touching any other input, and a floor target can never open
  // the dither gate (target > range.min() is false), so every period
  // selects window(range.min()) and the rng consumes nothing — the same
  // value evaluate_periods returns per period at idle, for any period
  // count, with the same final current_.
  const UncoreRange& range = cfg_->uncore;
  Freq f = range.min();
  const Freq lo = range.clamp(limit.min_freq);
  const Freq hi = range.clamp(limit.max_freq);
  if (f < lo) f = lo;
  if (f > hi) f = hi;
  current_ = f;
  return f;
}

}  // namespace ear::simhw
