// Analytic performance model: WorkDemand x (f_cpu, f_imc) -> iteration time
// and PMU-visible counters.
//
// Structure (per iteration, per node):
//   t_compute = I_pc * cpi_core * ((1-vpi)/f_cpu + vpi/f_avx)
//   t_lat     = (T/active_cores) * lambda * (lat_fixed + lat_unc/f_imc)
//   t_bw      = bytes / min(BW_peak, slope * f_imc)
//   t_busy    = max(t_compute + t_lat, t_bw)       (roofline overlap)
//   t_iter    = t_busy + t_comm + t_gpu
// where T = bytes/64 is the transaction count and f_avx the AVX512-capped
// effective frequency. CPI/GB-s observables follow from the cycle/instr
// accounting, including spin instructions during comm/GPU waits — this is
// what the EAR signature sees through the PMU.
#pragma once

#include "common/units.hpp"
#include "simhw/config.hpp"
#include "simhw/demand.hpp"

namespace ear::simhw {

using common::Freq;
using common::Secs;

/// Result of evaluating one iteration on one node.
struct PerfResult {
  Secs iter_time;           // wall time of the iteration
  double cycles_per_core = 0.0;
  double instructions_per_core = 0.0;  // incl. spin instructions
  double bytes = 0.0;       // node memory traffic
  double cpi = 0.0;         // observed cycles/instruction
  double tpi = 0.0;         // transactions per instruction (node level)
  double gbps = 0.0;        // observed node bandwidth
  double bw_utilisation = 0.0;   // achieved / available at current f_imc
  double avx512_fraction = 0.0;  // observed VPI (incl. spin dilution)
  Secs compute_time;        // t_compute + t_lat component
  Secs bandwidth_time;      // t_bw component
  bool bandwidth_bound = false;
};

/// Node bandwidth available at a given uncore frequency (GB/s).
[[nodiscard]] double available_bandwidth_gbps(const MemoryModel& mem,
                                              Freq f_imc);

/// Evaluate one iteration of `demand` with every active core at `f_cpu` and
/// the socket uncores at `f_imc`.
[[nodiscard]] PerfResult evaluate_iteration(const NodeConfig& cfg,
                                            const WorkDemand& demand,
                                            Freq f_cpu, Freq f_imc);

}  // namespace ear::simhw
