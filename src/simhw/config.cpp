#include "simhw/config.hpp"

namespace ear::simhw {

NodeConfig make_skylake_6148_node() {
  return NodeConfig{
      .name = "skylake-6148",
      .sockets = 2,
      .cores_per_socket = 20,
      // Turbo is modelled as a small bump over nominal for the all-core
      // case (single-core turbo is much higher but EAR pins all cores).
      .pstates = PstateTable(Freq::ghz(2.41), Freq::ghz(2.40), Freq::ghz(1.0),
                             Freq::mhz(100), /*avx512 cap=*/Freq::ghz(2.2)),
      .uncore = UncoreRange(Freq::ghz(1.2), Freq::ghz(2.4), Freq::mhz(100)),
      .memory = MemoryModel{},
      .power = PowerModel{},
      .spin_ipc = 2.0,
  };
}

NodeConfig make_skylake_6142m_gpu_node() {
  NodeConfig cfg{
      .name = "skylake-6142m-gpu",
      .sockets = 2,
      .cores_per_socket = 16,
      .pstates = PstateTable(Freq::ghz(2.61), Freq::ghz(2.60), Freq::ghz(1.2),
                             Freq::mhz(100), /*avx512 cap=*/Freq::ghz(2.2)),
      .uncore = UncoreRange(Freq::ghz(1.2), Freq::ghz(2.4), Freq::mhz(100)),
      .memory = MemoryModel{},
      .power = PowerModel{},
      .spin_ipc = 2.0,
  };
  // Two V100s; the second one is parked by the driver in the paper's
  // experiments, which the workload model expresses by keeping gpu_busy
  // fraction for one device only.
  cfg.power.gpu_count = 2;
  cfg.power.gpu_idle_watts = 28.0;
  cfg.power.gpu_busy_watts = 185.0;
  return cfg;
}

NodeConfig make_icelake_8358_node() {
  NodeConfig cfg{
      .name = "icelake-8358",
      .sockets = 2,
      .cores_per_socket = 32,
      .pstates = PstateTable(Freq::ghz(2.61), Freq::ghz(2.60), Freq::ghz(0.8),
                             Freq::mhz(100), /*avx512 cap=*/Freq::ghz(2.4)),
      .uncore = UncoreRange(Freq::mhz(800), Freq::ghz(2.4), Freq::mhz(100)),
      .memory = MemoryModel{},
      .power = PowerModel{},
      .spin_ipc = 2.0,
  };
  // Eight DDR4-3200 channels per socket: more headroom than the SD530.
  cfg.memory.peak_gbps = 350.0;
  cfg.memory.slope_gbps_per_ghz = 160.0;
  // 64 cores draw more in aggregate; per-core dynamic power is lower on
  // the 10 nm process.
  cfg.power.core_dyn_w = 0.7;
  cfg.power.base_watts = 85.0;
  return cfg;
}

}  // namespace ear::simhw
