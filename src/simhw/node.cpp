#include "simhw/node.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ear::simhw {

using common::Freq;
using common::Joules;
using common::Secs;

namespace {
/// Clock droop of busy cores vs the requested P-state (package C-state
/// exits, thermal management); makes a 2.40 GHz request read as ~2.39.
constexpr double kCoreFreqDroop = 0.995;
/// Frequency idle cores report through APERF/MPERF-style averaging.
const Freq kIdleReportFreq = Freq::ghz(2.0);

PowerBreakdown scale(PowerBreakdown p, double factor) {
  p.base.value *= factor;
  p.cores.value *= factor;
  p.uncore.value *= factor;
  p.dram.value *= factor;
  p.gpu.value *= factor;
  return p;
}
}  // namespace

SimNode::SimNode(NodeConfig cfg, std::uint64_t seed, NoiseModel noise,
                 HwUfsParams ufs)
    : cfg_(std::move(cfg)),
      noise_(noise),
      rng_(seed),
      memo_(cfg_),
      pstate_(cfg_.pstates.nominal_pstate()),
      rapl_(cfg_.sockets) {
  common::SplitMix64 seeder(seed ^ 0x5eed);
  for (std::size_t s = 0; s < cfg_.sockets; ++s) {
    msrs_.emplace_back();
    // After boot the register holds the full supported window.
    msrs_.back().set_uncore_limit(
        {.max_freq = cfg_.uncore.max(), .min_freq = cfg_.uncore.min()});
    governors_.emplace_back(cfg_, ufs, seeder.next());
  }
  last_inputs_ = UfsInputs{.requested_core_freq = cpu_freq(),
                           .effective_core_freq = cpu_freq(),
                           .bw_utilisation = 0.5,
                           .active_cores = 0,
                           .epb = 6};
}

void SimNode::set_cpu_pstate(Pstate p) {
  EAR_CHECK_MSG(p < cfg_.pstates.size(), "pstate out of range");
  pstate_ = p;
}

MsrFile& SimNode::msr(std::size_t socket) {
  EAR_CHECK(socket < msrs_.size());
  return msrs_[socket];
}

const MsrFile& SimNode::msr(std::size_t socket) const {
  EAR_CHECK(socket < msrs_.size());
  return msrs_[socket];
}

void SimNode::set_uncore_limit_all(const UncoreRatioLimit& limit) {
  for (auto& m : msrs_) m.set_uncore_limit(limit);
}

UncoreRatioLimit SimNode::uncore_limit() const {
  return msrs_.front().uncore_limit();
}

Freq SimNode::uncore_freq() const { return governors_.front().current(); }

Freq SimNode::run_governor(const UfsInputs& in, Secs duration) {
  // The loop re-evaluates every ~10 ms; average its output across the
  // periods an iteration spans (bounded to keep long iterations cheap —
  // beyond a few hundred periods the average has converged anyway).
  const double period = governors_.front().params().evaluation_period_s;
  const auto periods = static_cast<std::size_t>(std::clamp(
      duration.value / period, 1.0, 400.0));
  const UncoreRatioLimit limit = msrs_.front().uncore_limit();
  // Each socket's governor has its own rng stream, so batching all of one
  // governor's periods before the next (instead of interleaving sockets
  // within each period) leaves every stream — and thus every selection —
  // unchanged. The last socket drives the reported value, matching the
  // interleaved loop this replaces; other sockets track identically
  // because EAR applies node-level workloads symmetrically.
  double sum_khz = 0.0;
  for (auto& g : governors_) sum_khz = g.evaluate_periods(in, limit, periods);
  return Freq::khz(static_cast<std::uint64_t>(
      sum_khz / static_cast<double>(periods)));
}

IterationOutcome SimNode::execute_iteration(const WorkDemand& demand) {
  const Freq f_cpu = cpu_freq();
  // Effective clock the governor keys on: VPI-weighted blend of the
  // requested frequency and the AVX512 licence cap.
  const Freq f_cap = cfg_.pstates.avx512_effective(f_cpu);
  const Freq f_eff = Freq::khz(static_cast<std::uint64_t>(
      (1.0 - demand.vpi) * static_cast<double>(f_cpu.as_khz()) +
      demand.vpi * static_cast<double>(f_cap.as_khz())));

  UfsInputs inputs{
      .requested_core_freq = f_cpu,
      .effective_core_freq = f_eff,
      .bw_utilisation = last_inputs_.bw_utilisation,
      .relaxed_fraction = demand.relaxed_wait_fraction,
      .active_cores = demand.active_cores,
      .epb = msrs_.front().read(kMsrEnergyPerfBias),
  };
  if (inputs.epb == 0) inputs.epb = 6;  // unprogrammed MSR -> default bias

  // First pass: estimate duration at the governor's current setting to
  // know how many control periods the iteration spans.
  const PerfResult estimate =
      memo_.evaluate(cfg_, demand, f_cpu, governors_.front().current());
  const Freq f_imc = run_governor(inputs, estimate.iter_time);

  PerfResult perf = memo_.evaluate(cfg_, demand, f_cpu, f_imc);

  // Run-to-run noise: jitter the wall time (OS, network, DRAM refresh...).
  const double tnoise =
      std::max(0.5, 1.0 + rng_.normal(0.0, noise_.time_sigma));
  perf.iter_time.value *= tnoise;
  perf.gbps = perf.iter_time.value > 0.0
                  ? perf.bytes / perf.iter_time.value / 1e9
                  : 0.0;

  PowerBreakdown power = evaluate_power(cfg_, demand, perf, f_cpu, f_imc);
  const double pnoise =
      std::max(0.5, 1.0 + rng_.normal(0.0, noise_.power_sigma));
  power = scale(power, pnoise);

  const Secs dt = perf.iter_time;
  const Joules energy = power.total() * dt;

  // Energy counters.
  const Joules pkg_each =
      power.package() * dt;  // split evenly across sockets
  for (std::size_t s = 0; s < cfg_.sockets; ++s) {
    rapl_.deposit_pkg(s, Joules{pkg_each.value /
                                static_cast<double>(cfg_.sockets)});
  }
  rapl_.deposit_dram(power.dram * dt);
  inm_.deposit(energy, dt);

  // PMU counters (node aggregated).
  const double active = static_cast<double>(demand.active_cores);
  const double idle =
      static_cast<double>(cfg_.total_cores() - demand.active_cores);
  counters_.instructions += perf.instructions_per_core * active;
  counters_.cycles += perf.cycles_per_core * active;
  counters_.avx512_ops +=
      demand.vpi * demand.instructions_per_core * active;
  counters_.cas_transactions += perf.bytes / 64.0;
  const double total = static_cast<double>(cfg_.total_cores());
  // Reported core clock: AVX512 licence throttling shows up in the
  // APERF-style average (the paper's DGEMM reads 2.19 against a 2.40
  // request), and idle cores dilute it on mostly-idle nodes.
  const Freq f_licenced = cfg_.pstates.avx512_effective(f_cpu);
  const double active_khz =
      (1.0 - demand.vpi) * static_cast<double>(f_cpu.as_khz()) +
      demand.vpi * static_cast<double>(f_licenced.as_khz());
  const double avg_core_khz =
      total > 0.0
          ? (active * active_khz * kCoreFreqDroop +
             idle * static_cast<double>(kIdleReportFreq.as_khz())) /
                total
          : 0.0;
  counters_.cpu_freq_cycles += avg_core_khz * dt.value;
  counters_.imc_freq_cycles +=
      static_cast<double>(f_imc.as_khz()) * dt.value;
  counters_.elapsed_seconds += dt.value;
  counters_.wait_seconds += demand.comm_seconds + demand.gpu_seconds;

  clock_ += dt;
  inputs.bw_utilisation = perf.bw_utilisation;
  last_inputs_ = inputs;

  return IterationOutcome{.perf = perf,
                          .power = power,
                          .uncore_freq = f_imc,
                          .energy = energy};
}

StretchSummary SimNode::execute_stretch(const WorkDemand& demand,
                                        std::size_t max_iters,
                                        double stop_before_s) {
  StretchSummary out;

  // Hoisted invariants: the caller guarantees no control-plane mutation
  // mid-stretch, so everything the governor keys on except the bandwidth
  // feedback is fixed for the whole stretch.
  const Freq f_cpu = cpu_freq();
  const Freq f_cap = cfg_.pstates.avx512_effective(f_cpu);
  const Freq f_eff = Freq::khz(static_cast<std::uint64_t>(
      (1.0 - demand.vpi) * static_cast<double>(f_cpu.as_khz()) +
      demand.vpi * static_cast<double>(f_cap.as_khz())));
  std::uint64_t epb = msrs_.front().read(kMsrEnergyPerfBias);
  if (epb == 0) epb = 6;  // unprogrammed MSR -> default bias
  const UncoreRatioLimit limit = msrs_.front().uncore_limit();
  const double dither_p = governors_.front().params().dither_probability;

  const double active = static_cast<double>(demand.active_cores);
  const double idle_cores =
      static_cast<double>(cfg_.total_cores() - demand.active_cores);
  const double total = static_cast<double>(cfg_.total_cores());
  const double active_khz =
      (1.0 - demand.vpi) * static_cast<double>(f_cpu.as_khz()) +
      demand.vpi * static_cast<double>(f_cap.as_khz());
  const double avg_core_khz =
      total > 0.0
          ? (active * active_khz * kCoreFreqDroop +
             idle_cores * static_cast<double>(kIdleReportFreq.as_khz())) /
                total
          : 0.0;

  // The governor is reactive through last iteration's bandwidth
  // utilisation, which is itself a pure function of the chosen IMC
  // frequency — so the (f_imc, perf) pair reaches a fixed point after a
  // couple of warmup iterations and the cached state below stops being
  // recomputed. The recompute key is the bandwidth input alone.
  bool cached = false;
  double bw_in = 0.0;
  Freq f_imc{};
  PerfResult base{};

  while (out.iterations < max_iters && clock_.value < stop_before_s) {
    UfsInputs inputs{
        .requested_core_freq = f_cpu,
        .effective_core_freq = f_eff,
        .bw_utilisation = last_inputs_.bw_utilisation,
        .relaxed_fraction = demand.relaxed_wait_fraction,
        .active_cores = demand.active_cores,
        .epb = epb,
    };
    if (!cached || inputs.bw_utilisation != bw_in) {
      bw_in = inputs.bw_utilisation;
      // Every socket's governor integrates the stretch so current()
      // tracks exactly as the per-period loop would; the last socket
      // drives the value, like run_governor.
      UfsStretchSummary s{};
      for (auto& g : governors_) s = g.integrate_stretch(inputs, limit);
      // Dither-free this is bitwise run_governor's khz(sum/periods): the
      // sum is exactly steady*periods, so the quotient is exact and the
      // truncation lands on the same integer. Dithered, the Bernoulli
      // per-period average is replaced by its expectation.
      f_imc = s.expected_freq(dither_p);
      base = memo_.evaluate(cfg_, demand, f_cpu, f_imc);
      cached = true;
    }

    // Per-iteration tail, replicated from execute_iteration: same noise
    // draws in the same order, same accumulation arithmetic.
    PerfResult perf = base;
    const double tnoise =
        std::max(0.5, 1.0 + rng_.normal(0.0, noise_.time_sigma));
    perf.iter_time.value *= tnoise;
    perf.gbps = perf.iter_time.value > 0.0
                    ? perf.bytes / perf.iter_time.value / 1e9
                    : 0.0;

    PowerBreakdown power = evaluate_power(cfg_, demand, perf, f_cpu, f_imc);
    const double pnoise =
        std::max(0.5, 1.0 + rng_.normal(0.0, noise_.power_sigma));
    power = scale(power, pnoise);

    const Secs dt = perf.iter_time;
    const Joules energy = power.total() * dt;
    const Joules pkg_each = power.package() * dt;
    for (std::size_t s = 0; s < cfg_.sockets; ++s) {
      rapl_.deposit_pkg(s, Joules{pkg_each.value /
                                  static_cast<double>(cfg_.sockets)});
    }
    rapl_.deposit_dram(power.dram * dt);
    inm_.deposit(energy, dt);

    counters_.instructions += perf.instructions_per_core * active;
    counters_.cycles += perf.cycles_per_core * active;
    counters_.avx512_ops +=
        demand.vpi * demand.instructions_per_core * active;
    counters_.cas_transactions += perf.bytes / 64.0;
    counters_.cpu_freq_cycles += avg_core_khz * dt.value;
    counters_.imc_freq_cycles +=
        static_cast<double>(f_imc.as_khz()) * dt.value;
    counters_.elapsed_seconds += dt.value;
    counters_.wait_seconds += demand.comm_seconds + demand.gpu_seconds;

    clock_ += dt;
    inputs.bw_utilisation = perf.bw_utilisation;
    last_inputs_ = inputs;
    ++out.iterations;
    out.uncore_freq = f_imc;
  }
  return out;
}

void SimNode::idle(Secs dt) {
  EAR_CHECK(dt.value >= 0.0);
  if (dt.value == 0.0) return;
  WorkDemand nothing{};
  nothing.active_cores = 0;
  PerfResult perf{};
  perf.iter_time = dt;
  const Freq f_imc = run_governor(
      UfsInputs{.requested_core_freq = cpu_freq(),
                .effective_core_freq = cpu_freq(),
                .bw_utilisation = 0.0,
                .relaxed_fraction = 1.0,
                .active_cores = 0,
                .epb = 6},
      dt);
  const PowerBreakdown power =
      evaluate_power(cfg_, nothing, perf, cpu_freq(), f_imc);
  const Joules energy = power.total() * dt;
  for (std::size_t s = 0; s < cfg_.sockets; ++s) {
    rapl_.deposit_pkg(
        s, Joules{(power.package() * dt).value /
                  static_cast<double>(cfg_.sockets)});
  }
  rapl_.deposit_dram(power.dram * dt);
  inm_.deposit(energy, dt);
  counters_.elapsed_seconds += dt.value;
  counters_.cpu_freq_cycles +=
      static_cast<double>(kIdleReportFreq.as_khz()) * dt.value;
  counters_.imc_freq_cycles +=
      static_cast<double>(f_imc.as_khz()) * dt.value;
  clock_ += dt;
}

void SimNode::idle_cached(Secs dt) {
  EAR_CHECK(dt.value >= 0.0);
  if (dt.value == 0.0) return;
  const Freq f_cpu = cpu_freq();
  // The governor must run unconditionally: it owns the per-socket UFS
  // state (current frequency, limit windowing) that uncore_freq() and
  // later busy stretches observe. settle_idle is the idle special case
  // of run_governor — draw-free, bitwise the same result and state for
  // any period count — without the per-period input vector and
  // averaging. The last socket drives the value, like run_governor.
  const UncoreRatioLimit limit = msrs_.front().uncore_limit();
  Freq f_imc{};
  for (auto& g : governors_) f_imc = g.settle_idle(limit);
  if (!idle_memo_valid_ || idle_memo_f_cpu_.as_khz() != f_cpu.as_khz() ||
      idle_memo_f_imc_.as_khz() != f_imc.as_khz()) {
    WorkDemand nothing{};
    nothing.active_cores = 0;
    PerfResult perf{};
    perf.iter_time = dt;  // unused by the idle breakdown (no GPU work)
    idle_memo_power_ = evaluate_power(cfg_, nothing, perf, f_cpu, f_imc);
    idle_memo_f_cpu_ = f_cpu;
    idle_memo_f_imc_ = f_imc;
    idle_memo_valid_ = true;
  }
  const PowerBreakdown& power = idle_memo_power_;
  const Joules energy = power.total() * dt;
  for (std::size_t s = 0; s < cfg_.sockets; ++s) {
    rapl_.deposit_pkg(
        s, Joules{(power.package() * dt).value /
                  static_cast<double>(cfg_.sockets)});
  }
  rapl_.deposit_dram(power.dram * dt);
  inm_.deposit(energy, dt);
  counters_.elapsed_seconds += dt.value;
  counters_.cpu_freq_cycles +=
      static_cast<double>(kIdleReportFreq.as_khz()) * dt.value;
  counters_.imc_freq_cycles +=
      static_cast<double>(f_imc.as_khz()) * dt.value;
  clock_ += dt;
}

}  // namespace ear::simhw
