// WorkDemand: the neutral interface between application models and the
// hardware simulator. One WorkDemand describes what a node must execute for
// one iteration of the application's outer loop; the performance model
// turns it into time/counters given the current CPU and uncore frequencies.
#pragma once

#include <cstddef>

namespace ear::simhw {

struct WorkDemand {
  /// Retired instructions per active core per iteration (excluding
  /// busy-wait/spin instructions, which the model adds itself).
  double instructions_per_core = 0.0;
  /// Fraction of instructions that are AVX512 (the paper's VPI).
  double vpi = 0.0;
  /// Core-only CPI: cycles/instruction with an infinitely fast memory
  /// subsystem. The memory stall components are added on top.
  double cpi_core = 0.5;
  /// Main-memory traffic per node per iteration, bytes (64 B transactions).
  double bytes = 0.0;
  /// Serialised (non-overlapped) stall latency per memory transaction,
  /// split into a frequency-independent part and an uncore-clocked part:
  ///   stall = lat_fixed_ns + lat_uncore_cycles / f_imc.
  /// The split controls how strongly the workload reacts to uncore
  /// frequency changes independently of its CPU-frequency sensitivity.
  double lat_fixed_ns_per_txn = 0.0;
  double lat_uncore_cycles_per_txn = 0.0;
  /// Non-overlapped MPI communication time per iteration, seconds. The
  /// cores busy-wait (poll) during this time, as MPI implementations do.
  double comm_seconds = 0.0;
  /// GPU kernel time per iteration, seconds; the owning core busy-waits.
  double gpu_seconds = 0.0;
  /// Number of GPUs actively computing during gpu_seconds.
  std::size_t gpus_busy = 0;
  /// Fraction of the iteration the cores spend in relaxed waits (MPI
  /// progression with C-state entry). Dense busy-wait spinning (CUDA
  /// polling) keeps this at 0; the HW UFS governor keys on it.
  double relaxed_wait_fraction = 0.0;
  /// Cores running application threads on this node.
  std::size_t active_cores = 0;
  /// Workload-specific multiplier on core dynamic power (switching factor
  /// differences between codes; calibrated from the paper's DC powers).
  double power_activity = 1.0;
  /// Per-workload busy-wait loop IPC; 0 means use the node default. Wait
  /// loops differ (MPI poll vs CUDA stream sync), and the observed CPI of
  /// wait-dominated codes is 1/spin_ipc.
  double spin_ipc_override = 0.0;

  /// Member-wise equality; the iteration memo keys its table on it.
  friend bool operator==(const WorkDemand&, const WorkDemand&) = default;
};

}  // namespace ear::simhw
