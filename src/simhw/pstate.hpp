// P-state tables for the simulated processor.
//
// EAR's convention (which we follow): pstate 0 is the turbo frequency,
// pstate 1 the nominal (base) frequency, and higher indices step down in
// 100 MHz increments. E.g. for the Xeon Gold 6148 used in the paper:
//   pstate 0 = 2.41 GHz (turbo request), 1 = 2.40, 2 = 2.30, 3 = 2.20, ...
// AVX512 all-core execution is capped at a lower licence frequency
// (2.2 GHz on the 6148, i.e. pstate 3 — exactly as §V-A of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace ear::simhw {

using common::Freq;

/// Index into a PstateTable. Smaller index = higher frequency.
using Pstate = std::size_t;

class PstateTable {
 public:
  /// Builds the EAR-style table: `turbo` at index 0, then `nominal` down to
  /// `min` in `step` decrements.
  PstateTable(Freq turbo, Freq nominal, Freq min, Freq step,
              Freq avx512_all_core_cap);

  /// Default: the Skylake 6148 ladder (2.41 turbo, 2.40 nominal, 1.0 min,
  /// 100 MHz steps, 2.2 GHz AVX512 all-core cap).
  PstateTable()
      : PstateTable(Freq::ghz(2.41), Freq::ghz(2.40), Freq::ghz(1.0),
                    Freq::mhz(100), Freq::ghz(2.2)) {}

  [[nodiscard]] std::size_t size() const { return freqs_.size(); }
  // Inline: the node hot paths read the ladder once or more per
  // simulated iteration.
  [[nodiscard]] Freq freq(Pstate p) const {
    EAR_CHECK_MSG(p < freqs_.size(), "pstate out of range");
    return freqs_[p];
  }
  [[nodiscard]] Freq turbo() const { return freqs_.front(); }
  [[nodiscard]] Freq nominal() const { return freqs_.size() > 1 ? freqs_[1] : freqs_[0]; }
  [[nodiscard]] Freq min() const { return freqs_.back(); }
  [[nodiscard]] Pstate nominal_pstate() const { return freqs_.size() > 1 ? 1 : 0; }
  [[nodiscard]] Pstate min_pstate() const { return freqs_.size() - 1; }

  /// Closest pstate whose frequency is <= `f` (or the fastest one if `f`
  /// exceeds turbo).
  [[nodiscard]] Pstate pstate_for(Freq f) const;

  /// The AVX512 all-core licence cap applied to a requested frequency.
  [[nodiscard]] Freq avx512_cap() const { return avx512_cap_; }
  [[nodiscard]] Freq avx512_effective(Freq requested) const {
    return requested < avx512_cap_ ? requested : avx512_cap_;
  }
  /// The pstate the AVX512 cap corresponds to (pstate 3 on the 6148).
  [[nodiscard]] Pstate avx512_pstate() const { return pstate_for(avx512_cap_); }

  [[nodiscard]] const std::vector<Freq>& all() const { return freqs_; }

 private:
  std::vector<Freq> freqs_;
  Freq avx512_cap_;
};

/// Uncore (IMC) frequency range: min..max in fixed (100 MHz) steps.
class UncoreRange {
 public:
  UncoreRange(Freq min, Freq max, Freq step);

  /// Default: the paper's Skylake window, 1.2-2.4 GHz in 100 MHz bins.
  UncoreRange()
      : UncoreRange(Freq::ghz(1.2), Freq::ghz(2.4), Freq::mhz(100)) {}

  [[nodiscard]] Freq min() const { return min_; }
  [[nodiscard]] Freq max() const { return max_; }
  [[nodiscard]] Freq step() const { return step_; }
  [[nodiscard]] std::size_t num_steps() const;

  /// Clamp to the supported range and snap down to the step grid.
  /// Inline: the UFS governor clamps several times per control step and
  /// the simulator steps governors millions of times per facility run.
  [[nodiscard]] Freq clamp(Freq f) const {
    if (f <= min_) return min_;
    if (f >= max_) return max_;
    // Snap down onto the grid.
    const auto offset = (f.as_khz() - min_.as_khz()) / step_.as_khz();
    return Freq::khz(min_.as_khz() + offset * step_.as_khz());
  }
  /// One step below `f`, clamped at min().
  [[nodiscard]] Freq step_down(Freq f) const {
    const Freq g = clamp(f);
    return g <= min_ ? min_ : Freq::khz(g.as_khz() - step_.as_khz());
  }
  /// One step above `f`, clamped at max().
  [[nodiscard]] Freq step_up(Freq f) const {
    const Freq g = clamp(f);
    return g >= max_ ? max_ : Freq::khz(g.as_khz() + step_.as_khz());
  }
  /// All grid frequencies from max to min (descending), as the Fig. 1
  /// sweeps enumerate them.
  [[nodiscard]] std::vector<Freq> descending() const;

 private:
  Freq min_;
  Freq max_;
  Freq step_;
};

}  // namespace ear::simhw
