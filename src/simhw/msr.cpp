#include "simhw/msr.hpp"

#include "common/error.hpp"

namespace ear::simhw {

namespace {
// UNCORE_RATIO_LIMIT expresses frequencies as multiples of 100 MHz.
constexpr std::uint64_t kRatioUnitKhz = 100'000;

std::uint64_t to_ratio(Freq f) { return f.as_khz() / kRatioUnitKhz; }
Freq from_ratio(std::uint64_t r) { return Freq::khz(r * kRatioUnitKhz); }
}  // namespace

std::uint64_t UncoreRatioLimit::encode() const {
  const std::uint64_t max_ratio = to_ratio(max_freq);
  const std::uint64_t min_ratio = to_ratio(min_freq);
  EAR_CHECK_MSG(max_ratio <= 0x7F && min_ratio <= 0x7F,
                "uncore ratio exceeds 7-bit field");
  return (min_ratio << 8) | max_ratio;
}

UncoreRatioLimit UncoreRatioLimit::decode(std::uint64_t raw) {
  return UncoreRatioLimit{
      .max_freq = from_ratio(raw & 0x7F),
      .min_freq = from_ratio((raw >> 8) & 0x7F),
  };
}

std::uint64_t MsrFile::read(std::uint32_t addr) const {
  const auto it = regs_.find(addr);
  return it == regs_.end() ? 0 : it->second;
}

void MsrFile::write(std::uint32_t addr, std::uint64_t value) {
  ++writes_;
  if (locked_.count(addr) != 0) return;  // silently dropped
  regs_[addr] = value;
}

void MsrFile::lock(std::uint32_t addr) { locked_.insert(addr); }

bool MsrFile::is_locked(std::uint32_t addr) const {
  return locked_.count(addr) != 0;
}

UncoreRatioLimit MsrFile::uncore_limit() const {
  return UncoreRatioLimit::decode(read(kMsrUncoreRatioLimit));
}

void MsrFile::set_uncore_limit(const UncoreRatioLimit& limit) {
  EAR_CHECK_MSG(limit.min_freq <= limit.max_freq,
                "uncore min must not exceed max");
  write(kMsrUncoreRatioLimit, limit.encode());
}

}  // namespace ear::simhw
