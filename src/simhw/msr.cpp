#include "simhw/msr.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace ear::simhw {

namespace {
// UNCORE_RATIO_LIMIT expresses frequencies as multiples of 100 MHz.
constexpr std::uint64_t kRatioUnitKhz = 100'000;
// Each ratio occupies a 7-bit field (SDM vol. 4: bits 6:0 and 14:8).
constexpr std::uint64_t kRatioMask = 0x7F;
// All bits software may set in MSR 0x620; the rest are reserved.
constexpr std::uint64_t kUncoreRatioWritableBits =
    (kRatioMask << 8) | kRatioMask;
// IA32_ENERGY_PERF_BIAS carries a 4-bit hint (0 = performance, 15 =
// energy) in bits 3:0.
constexpr std::uint64_t kEpbMax = 15;

std::uint64_t to_ratio(Freq f) { return f.as_khz() / kRatioUnitKhz; }
Freq from_ratio(std::uint64_t r) { return Freq::khz(r * kRatioUnitKhz); }
}  // namespace

std::uint64_t UncoreRatioLimit::encode() const {
  std::uint64_t max_ratio = to_ratio(max_freq);
  std::uint64_t min_ratio = to_ratio(min_freq);
  // Checked builds reject ratios that do not fit the 7-bit fields and
  // inverted windows; with contracts compiled out the ratios clamp to the
  // field maximum so an out-of-range Freq can never spill into the
  // neighbouring field (it used to corrupt the min field).
  EAR_EXPECT_MSG(max_ratio <= kRatioMask && min_ratio <= kRatioMask,
                 "uncore ratio exceeds 7-bit field");
  EAR_EXPECT_MSG(min_freq <= max_freq, "uncore min must not exceed max");
  max_ratio = std::min(max_ratio, kRatioMask);
  min_ratio = std::min(min_ratio, kRatioMask);
  return (min_ratio << 8) | max_ratio;
}

UncoreRatioLimit UncoreRatioLimit::decode(std::uint64_t raw) {
  EAR_EXPECT_MSG((raw & ~kUncoreRatioWritableBits) == 0,
                 "reserved bits set in UNCORE_RATIO_LIMIT value");
  return UncoreRatioLimit{
      .max_freq = from_ratio(raw & kRatioMask),
      .min_freq = from_ratio((raw >> 8) & kRatioMask),
  };
}

std::uint64_t MsrFile::read(std::uint32_t addr) const {
  if (addr == kMsrUncoreRatioLimit) return uncore_raw_;
  if (addr == kMsrEnergyPerfBias) return epb_raw_;
  const auto it = regs_.find(addr);
  return it == regs_.end() ? 0 : it->second;
}

void MsrFile::write(std::uint32_t addr, std::uint64_t value) {
  // Model the SDM-documented layout of the registers we emulate: a write
  // that sets reserved bits is a driver bug the real hardware would #GP
  // on or silently mangle, so checked builds refuse it.
  switch (addr) {
    case kMsrUncoreRatioLimit:
      EAR_EXPECT_MSG((value & ~kUncoreRatioWritableBits) == 0,
                     "reserved bits set in UNCORE_RATIO_LIMIT write");
      break;
    case kMsrEnergyPerfBias:
      EAR_EXPECT_MSG(value <= kEpbMax,
                     "ENERGY_PERF_BIAS hint exceeds 4-bit range");
      break;
    default:
      break;
  }
  ++writes_;
  // Fault hook after validation: an injected drop models a write that was
  // issued but never landed, indistinguishable (to software) from a lock.
  if (interceptor_ != nullptr && !interceptor_->allow_write(addr, value)) {
    return;
  }
  if (locked_.count(addr) != 0) return;  // silently dropped
  regs_[addr] = value;
  if (addr == kMsrUncoreRatioLimit) {
    uncore_raw_ = value;
    uncore_decoded_ = UncoreRatioLimit::decode(value);
  } else if (addr == kMsrEnergyPerfBias) {
    epb_raw_ = value;
  }
}

void MsrFile::lock(std::uint32_t addr) { locked_.insert(addr); }

bool MsrFile::is_locked(std::uint32_t addr) const {
  return locked_.count(addr) != 0;
}

UncoreRatioLimit MsrFile::uncore_limit() const { return uncore_decoded_; }

void MsrFile::set_uncore_limit(const UncoreRatioLimit& limit) {
  EAR_EXPECT_MSG(limit.min_freq <= limit.max_freq,
                 "uncore min must not exceed max");
  write(kMsrUncoreRatioLimit, limit.encode());
}

}  // namespace ear::simhw
