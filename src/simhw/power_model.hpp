// Analytic node power model.
//
// DC node power = baseline + sum over sockets of (core + uncore) + DRAM
// + GPUs. The baseline (fans, voltage regulators, disks, BMC, NIC) is
// frequency-independent — this is exactly why the paper insists on
// evaluating with DC node power instead of RAPL package power (Table VII):
// a package saving is a larger *fraction* of package power than of node
// power, and the ratio between the two varies per application.
#pragma once

#include "common/units.hpp"
#include "simhw/config.hpp"
#include "simhw/demand.hpp"
#include "simhw/perf_model.hpp"

namespace ear::simhw {

using common::Watts;

/// Per-component power attribution for one node at one operating point.
struct PowerBreakdown {
  Watts base;     // node baseline outside the packages
  Watts cores;    // all cores, active + idle, both sockets
  Watts uncore;   // LLC/mesh/IMC, both sockets
  Watts dram;     // DIMM power
  Watts gpu;      // accelerators (zero on CPU-only nodes)

  /// RAPL PKG domain: cores + uncore (what the related work reports).
  [[nodiscard]] Watts package() const { return cores + uncore; }
  /// Full DC node power (what the paper reports).
  [[nodiscard]] Watts total() const {
    return base + cores + uncore + dram + gpu;
  }
};

/// Evaluate average power over an iteration whose performance result is
/// `perf` (the observed IPC/VPI/bandwidth determine switching activity).
[[nodiscard]] PowerBreakdown evaluate_power(const NodeConfig& cfg,
                                            const WorkDemand& demand,
                                            const PerfResult& perf,
                                            Freq f_cpu, Freq f_imc);

/// Core voltage at a given frequency.
[[nodiscard]] double core_voltage(const PowerModel& pm, Freq f);
/// Uncore voltage at a given frequency.
[[nodiscard]] double uncore_voltage(const PowerModel& pm, Freq f);

}  // namespace ear::simhw
