// Intel Node Manager (INM) DC-node energy counter emulation.
//
// The paper reads node energy through IPMI/INM, whose accumulated-energy
// counter only updates once per second — which is why EARL computes DC
// node power from >=10 s windows. We reproduce the 1 s quantisation: a
// read returns the energy accumulated up to the last whole second of
// simulated time.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace ear::simhw {

using common::Joules;
using common::Secs;

class NodeManagerCounter {
 public:
  /// Simulator side: add `e` joules consumed over `dt` of simulated time.
  void deposit(Joules e, Secs dt);

  /// IPMI-visible reading: whole joules, frozen at 1 s boundaries.
  [[nodiscard]] std::uint64_t read_joules() const { return published_; }

  /// Continuous ground truth (not visible to EARL; used by test oracles).
  [[nodiscard]] Joules exact() const { return exact_; }
  [[nodiscard]] Secs elapsed() const { return Secs{elapsed_}; }

 private:
  Joules exact_{};
  double elapsed_ = 0.0;
  double last_publish_second_ = 0.0;
  std::uint64_t published_ = 0;
};

}  // namespace ear::simhw
