// SimNode: one simulated compute node.
//
// Owns the per-socket MSR files, the hardware UFS governors, the PMU
// counters and the RAPL/INM energy counters. The simulation engine drives
// it one application iteration at a time; EARL/EARD talk to it only
// through the same narrow interfaces they would use on real hardware
// (P-state request, MSR writes, counter reads).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simhw/config.hpp"
#include "simhw/counters.hpp"
#include "simhw/demand.hpp"
#include "simhw/hw_ufs.hpp"
#include "simhw/inm.hpp"
#include "simhw/kernel_memo.hpp"
#include "simhw/msr.hpp"
#include "simhw/perf_model.hpp"
#include "simhw/power_model.hpp"
#include "simhw/rapl.hpp"

namespace ear::simhw {

/// Run-to-run measurement/execution variation, applied per iteration.
struct NoiseModel {
  double time_sigma = 0.004;   // relative jitter on iteration time
  double power_sigma = 0.005;  // relative jitter on node power
};

/// What one executed iteration looked like (ground truth; EARL sees only
/// the counter deltas).
struct IterationOutcome {
  PerfResult perf;
  PowerBreakdown power;
  common::Freq uncore_freq;  // time-averaged over the iteration
  common::Joules energy;     // DC node energy of the iteration
};

/// What a phase-stable stretch looked like (see execute_stretch).
struct StretchSummary {
  std::size_t iterations = 0;   // iterations actually executed
  common::Freq uncore_freq{};   // closed-form IMC setting of the last
                                // iteration (default when none ran)
};

class SimNode {
 public:
  SimNode(NodeConfig cfg, std::uint64_t seed,
          NoiseModel noise = {}, HwUfsParams ufs = {});

  // --- Control interfaces (what EARD exposes) ---------------------------
  /// Request a P-state for all cores (EAR pins the whole node).
  void set_cpu_pstate(Pstate p);
  void set_cpu_freq(common::Freq f) { set_cpu_pstate(cfg_.pstates.pstate_for(f)); }
  [[nodiscard]] Pstate cpu_pstate() const { return pstate_; }
  [[nodiscard]] common::Freq cpu_freq() const { return cfg_.pstates.freq(pstate_); }

  /// Per-socket MSR access (privileged; EARD is the only caller in the
  /// real system). Writing UNCORE_RATIO_LIMIT constrains the governor.
  [[nodiscard]] MsrFile& msr(std::size_t socket);
  [[nodiscard]] const MsrFile& msr(std::size_t socket) const;
  /// Convenience: write the same uncore window on every socket.
  void set_uncore_limit_all(const UncoreRatioLimit& limit);
  [[nodiscard]] UncoreRatioLimit uncore_limit() const;

  // --- Measurement interfaces -------------------------------------------
  [[nodiscard]] const PmuCounters& counters() const { return counters_; }
  [[nodiscard]] const RaplDomains& rapl() const { return rapl_; }
  [[nodiscard]] const NodeManagerCounter& inm() const { return inm_; }
  [[nodiscard]] common::Secs clock() const { return clock_; }

  // --- Simulation driver -------------------------------------------------
  /// Execute one application iteration under the current settings.
  IterationOutcome execute_iteration(const WorkDemand& demand);

  /// Execute up to `max_iters` iterations of the same demand, stopping
  /// before any iteration that would *start* at or past `stop_before_s`
  /// (node clock) — the facility round-boundary rule, where the last
  /// iteration may overshoot the boundary. The control settings (P-state,
  /// MSR window, EPB) must not change mid-stretch; the caller owns that
  /// invariant (facility rounds only mutate them at barriers).
  ///
  /// The per-iteration governor period loop is replaced by its closed
  /// form (HwUfsGovernor::integrate_stretch), and everything that is
  /// constant across the stretch — effective clock, governor target,
  /// memoised perf model, PMU increments — is hoisted out of the loop.
  /// The per-iteration noise draws still happen, in the same order and
  /// from the same stream as execute_iteration, so:
  ///   * with the dither gate closed (dither_probability == 0, or no
  ///     headroom above the uncore floor) the node state afterwards is
  ///     bitwise identical to calling execute_iteration in a loop;
  ///   * with dithering, the per-iteration random IMC average is
  ///     replaced by its expectation — bounded by one 100 MHz dither bin
  ///     scaled by the dither probability (see docs/performance.md).
  StretchSummary execute_stretch(const WorkDemand& demand,
                                 std::size_t max_iters,
                                 double stop_before_s);

  /// Advance idle time (no application work; cores idle).
  void idle(common::Secs dt);

  /// idle(), with the power-model evaluation memoised on the
  /// (core frequency, governor output) pair. Idle power is
  /// duration-independent — no active cores, no GPU work, zero
  /// bandwidth — so the breakdown only changes when the P-state or the
  /// uncore window moves. The governor still runs every call (it owns
  /// the per-socket UFS state) and every deposit happens per call with
  /// the same values and order as idle(), so the node state afterwards
  /// is bitwise identical (proved in test_node.cpp). The event core
  /// uses this on its round boundaries; the reference facility loop
  /// keeps the naive recompute as the executable spec.
  void idle_cached(common::Secs dt);

  [[nodiscard]] const NodeConfig& config() const { return cfg_; }
  /// Current (last-period) uncore frequency of socket 0.
  [[nodiscard]] common::Freq uncore_freq() const;

 private:
  /// Run the HW governor for the periods covering `duration` and return
  /// the time-averaged uncore frequency it produced.
  common::Freq run_governor(const UfsInputs& in, common::Secs duration);

  NodeConfig cfg_;
  NoiseModel noise_;
  common::Rng rng_;
  // Memoised performance model over the P-state × IMC grid; noise is
  // applied after lookup, so results stay bitwise identical.
  IterationMemo memo_;
  Pstate pstate_;
  std::vector<MsrFile> msrs_;
  std::vector<HwUfsGovernor> governors_;
  PmuCounters counters_;
  RaplDomains rapl_;
  NodeManagerCounter inm_;
  common::Secs clock_{};
  // Governor inputs observed on the previous iteration (it is reactive).
  UfsInputs last_inputs_;
  // Memo for idle_cached(): the idle PowerBreakdown keyed on the
  // (core, uncore) frequency pair that produced it.
  bool idle_memo_valid_ = false;
  common::Freq idle_memo_f_cpu_{};
  common::Freq idle_memo_f_imc_{};
  PowerBreakdown idle_memo_power_{};
};

}  // namespace ear::simhw
