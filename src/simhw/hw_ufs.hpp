// Hardware uncore frequency scaling (UFS) control loop.
//
// Models the behaviour the paper documents for Skylake (§IV, Intel patent
// US9323316B2, Hackenberg'15, Schoene'19). The loop re-evaluates roughly
// every 10 ms and is keyed on the fastest active core's activity-weighted
// effective frequency plus memory-bandwidth utilisation:
//
//  1. no active cores                          -> minimum
//  2. bandwidth utilisation high (no AVX cap)  -> maximum   (memory-bound)
//  3. activity-weighted core freq >= threshold -> maximum   (conservative)
//  4. otherwise track the core clock minus an offset, with extra drops for
//     near-idle sockets (GPU busy-wait) and wide MPI-wait phases where
//     cores dip into C-states;
//  5. the EPB hint biases powersave configurations one bin lower;
//  6. the UNCORE_RATIO_LIMIT window always wins, so pinning min == max
//     through MSR 0x620 disables the loop entirely.
//
// Rules 2-3 are the inefficiency the paper's explicit UFS exploits: the
// hardware keeps the fabric at full speed for any busy socket even when
// the application would not notice a slower uncore.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "simhw/config.hpp"
#include "simhw/msr.hpp"

namespace ear::simhw {

using common::Freq;

/// Inputs the governor samples from the socket each evaluation period.
struct UfsInputs {
  Freq requested_core_freq;   // OS/EARL-requested P-state frequency
  /// Time-averaged effective clock of the fastest active core: the
  /// VPI-weighted blend of the requested frequency and the AVX512 licence
  /// cap (a code that is 35 % AVX512 still runs at the requested clock
  /// most of the time, so the fabric stays fast; a 100 % AVX512 code is
  /// pinned at the licence frequency and the fabric follows it down).
  Freq effective_core_freq;
  double bw_utilisation = 0.0;   // achieved/available memory bandwidth
  /// Fraction of time cores spend in relaxed waits (C1/C1E entry during
  /// MPI progression); dense busy-wait spinning does not count.
  double relaxed_fraction = 0.0;
  std::size_t active_cores = 0;
  std::uint64_t epb = 6;      // IA32_ENERGY_PERF_BIAS (0=perf .. 15=powersave)
};

/// Tuning constants of the modelled control loop.
struct HwUfsParams {
  double evaluation_period_s = 0.010;  // 10 ms (Schoene'19)
  /// Rule 2: utilisation at/above this pins the uncore to the max limit.
  double high_bw_threshold = 0.30;
  /// Licence throttling is "active" (and rule 2 skipped) when the
  /// effective clock sits at least this far below the request.
  Freq avx_throttle_min = Freq::mhz(30);
  /// Rule 3: effective core clocks within this margin of the node's
  /// nominal frequency pin the uncore to max — a nominal-or-turbo request
  /// always keeps the fabric fast (2.3 GHz on the 2.4 GHz Skylake).
  Freq high_freq_margin = Freq::mhz(100);
  /// Weight of relaxed-wait time when discounting the core frequency.
  double relaxed_weight = 0.5;
  /// Rule 4: tracking offset below the (weighted) core clock.
  Freq track_offset = Freq::mhz(200);
  /// Near-idle socket drop (GPU busy-wait case).
  double low_bw_threshold = 0.02;
  std::size_t low_activity_cores = 2;
  Freq low_activity_drop = Freq::mhz(400);
  /// Wide MPI-wait drop: many cores repeatedly entering C-states.
  double relaxed_threshold = 0.15;
  double relaxed_bw_threshold = 0.08;
  Freq relaxed_drop = Freq::mhz(400);
  /// Powersave-leaning EPB values shave one extra bin.
  std::uint64_t epb_powersave_threshold = 8;
  /// Probability of dithering one bin below target in a period (the HW
  /// loop hunts; this is why the paper measures 2.39 GHz averages against
  /// a 2.4 GHz limit).
  double dither_probability = 0.12;
};

/// Steady-state (dither-free) target of the modelled control loop; shared
/// between the governor and calibration code that needs to predict it.
[[nodiscard]] Freq hw_ufs_steady_target(const NodeConfig& cfg,
                                        const HwUfsParams& params,
                                        const UfsInputs& in);

/// Closed-form summary of a phase-stable stretch: everything the loop's
/// per-period behaviour under constant inputs can be reduced to. The
/// per-period distribution has at most two support points (steady, or one
/// bin below when the dither gate can open), so a stretch of any length
/// is fully described by the two frequencies and the dither probability.
struct UfsStretchSummary {
  Freq steady;        // MSR-windowed steady-state target
  Freq dithered;      // MSR-windowed one-bin-down value (== steady when
                      // the dither gate is closed)
  bool can_dither = false;  // gate open (target above the range minimum
                            // and dither_probability > 0)
  /// Expected per-period frequency: exactly `steady` when the gate is
  /// closed, (1-p)*steady + p*dithered truncated to whole kHz otherwise
  /// (the model's frequency grid is integer kHz everywhere).
  [[nodiscard]] Freq expected_freq(double dither_probability) const {
    if (!can_dither) return steady;
    const double khz = (1.0 - dither_probability) *
                           static_cast<double>(steady.as_khz()) +
                       dither_probability *
                           static_cast<double>(dithered.as_khz());
    return Freq::khz(static_cast<std::uint64_t>(khz));
  }
};

/// One governor instance per socket.
class HwUfsGovernor {
 public:
  HwUfsGovernor(const NodeConfig& cfg, HwUfsParams params,
                std::uint64_t seed);

  /// Evaluate the control loop once (one ~10 ms period) and return the
  /// uncore frequency for the next period. `limit` is the current MSR
  /// 0x620 window.
  Freq evaluate(const UfsInputs& in, const UncoreRatioLimit& limit);

  /// Evaluate `periods` consecutive control-loop periods under constant
  /// inputs and return the sum of the selected frequencies in kHz.
  /// Bitwise identical to calling evaluate() `periods` times and summing
  /// `current().as_khz()` into a double: the steady-state target is a
  /// pure function of the inputs, so it is computed once, and the rng
  /// consumes exactly the draws evaluate() would (one per period when the
  /// dither gate can open, none otherwise — a gate that cannot change the
  /// selection, i.e. dither_probability <= 0, counts as closed and
  /// consumes nothing). `current()` afterwards is the last period's
  /// selection. `periods == 0` is a no-op returning 0.
  double evaluate_periods(const UfsInputs& in, const UncoreRatioLimit& limit,
                          std::size_t periods);

  /// Closed-form stretch integration: summarise the per-period behaviour
  /// under constant inputs without advancing the RNG, and leave
  /// `current()` at the steady value (the overwhelmingly likely last
  /// selection). When the dither gate is closed this is *exactly* what
  /// `evaluate_periods` computes per period; when it is open the summary's
  /// `expected_khz` replaces the per-period Bernoulli sum with its
  /// expectation (the event core's documented tolerance source).
  UfsStretchSummary integrate_stretch(const UfsInputs& in,
                                      const UncoreRatioLimit& limit);

  /// Idle fast path: with no active cores the steady target is the range
  /// floor (rule 1) and the dither gate is structurally closed (the
  /// target cannot sit above the floor), so any number of periods
  /// settles on one pure function of the MSR window — no rng, no input
  /// vector. Bitwise identical to evaluate_periods with an idle input at
  /// any period count (proved against idle() in test_node.cpp).
  Freq settle_idle(const UncoreRatioLimit& limit);

  [[nodiscard]] Freq current() const { return current_; }
  [[nodiscard]] const HwUfsParams& params() const { return params_; }

 private:
  const NodeConfig* cfg_;
  HwUfsParams params_;
  common::Rng rng_;
  Freq current_;
};

}  // namespace ear::simhw
