#include "simhw/power_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ear::simhw {

double core_voltage(const PowerModel& pm, Freq f) {
  return pm.core_v0 + pm.core_v1 * f.as_ghz();
}

double uncore_voltage(const PowerModel& pm, Freq f) {
  return pm.uncore_v0 + pm.uncore_v1 * f.as_ghz();
}

PowerBreakdown evaluate_power(const NodeConfig& cfg, const WorkDemand& demand,
                              const PerfResult& perf, Freq f_cpu,
                              Freq f_imc) {
  const PowerModel& pm = cfg.power;
  PowerBreakdown out;
  out.base = Watts{pm.base_watts};

  // --- Cores -------------------------------------------------------------
  // Active cores: leakage grows with voltage; dynamic power is f * V^2
  // scaled by a switching-activity factor derived from the observed IPC
  // (spin-diluted, so busy-wait phases draw less) plus an AVX512 bonus for
  // the wide vector units.
  const double v = core_voltage(pm, f_cpu);
  const double ipc = perf.cpi > 0.0 ? 1.0 / perf.cpi : 0.0;
  const double act =
      std::clamp(pm.act0 + pm.act1 * ipc, 0.5, 1.3) *
      (1.0 + pm.avx512_act_bonus * perf.avx512_fraction);
  const double active = static_cast<double>(demand.active_cores);
  const double idle =
      static_cast<double>(cfg.total_cores() - demand.active_cores);
  const double core_leak = pm.core_leak_w_per_v * v;
  const double core_dyn =
      pm.core_dyn_w * f_cpu.as_ghz() * v * v * act * demand.power_activity;
  out.cores = Watts{active * (core_leak + core_dyn) +
                    idle * pm.core_idle_watts};

  // --- Uncore ------------------------------------------------------------
  const double vu = uncore_voltage(pm, f_imc);
  const double uncore_act =
      pm.uncore_act0 +
      pm.uncore_act1 * std::clamp(perf.bw_utilisation, 0.0, 1.0);
  const double uncore_per_socket =
      pm.uncore_leak_w_per_v * vu +
      pm.uncore_dyn_w * f_imc.as_ghz() * vu * vu * uncore_act;
  out.uncore = Watts{static_cast<double>(cfg.sockets) * uncore_per_socket};

  // --- DRAM --------------------------------------------------------------
  out.dram = Watts{pm.dram_background_watts + pm.dram_w_per_gbps * perf.gbps};

  // --- GPUs --------------------------------------------------------------
  if (pm.gpu_count > 0) {
    EAR_CHECK(demand.gpus_busy <= pm.gpu_count);
    const double t_iter = perf.iter_time.value;
    const double busy_frac =
        t_iter > 0.0 ? std::min(1.0, demand.gpu_seconds / t_iter) : 0.0;
    double gpu = static_cast<double>(pm.gpu_count) * pm.gpu_idle_watts;
    gpu += static_cast<double>(demand.gpus_busy) * busy_frac *
           (pm.gpu_busy_watts - pm.gpu_idle_watts);
    out.gpu = Watts{gpu};
  } else {
    out.gpu = Watts{0.0};
  }
  return out;
}

}  // namespace ear::simhw
