// IterationMemo: memoised evaluate_iteration() over the P-state × IMC grid.
//
// The analytic performance model is pure: for a fixed NodeConfig and
// WorkDemand, the result depends only on (f_cpu, f_imc), and both
// frequencies live on small enumerable grids (the P-state ladder and the
// 100 MHz uncore window — a few hundred points total). Policies project
// the same points repeatedly (IMC searches, pstate selection, the
// campaign's grid cells), so one node-local table turns those repeats
// into a fetch.
//
// Determinism: the table stores the *noise-free* model output, bit for
// bit — run-to-run noise is applied by SimNode after the lookup, exactly
// as it was applied after the direct call before. Off-grid frequencies
// (e.g. the dither-averaged uncore frequency of a finished iteration)
// fall through to a direct evaluation, so results never depend on whether
// a point happened to be cached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "simhw/config.hpp"
#include "simhw/demand.hpp"
#include "simhw/perf_model.hpp"

namespace ear::simhw {

class IterationMemo {
 public:
  /// The memo is bound to one node configuration; `evaluate` must be
  /// called with that same configuration (SimNode's config is immutable
  /// after construction, which is what makes the binding safe).
  explicit IterationMemo(const NodeConfig& cfg);

  /// Same contract (and bitwise-identical results) as
  /// evaluate_iteration(cfg, demand, f_cpu, f_imc). Grid points are
  /// computed at most once per demand; a demand change invalidates the
  /// whole table.
  PerfResult evaluate(const NodeConfig& cfg, const WorkDemand& demand,
                      Freq f_cpu, Freq f_imc);

  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Index into the P-state ladder, npos if `f` is not a table frequency.
  [[nodiscard]] std::size_t cpu_index(Freq f) const;
  /// Index into the uncore grid, npos if `f` is off-grid.
  [[nodiscard]] std::size_t imc_index(Freq f) const;

  std::vector<std::uint64_t> cpu_khz_;  // P-state ladder, descending
  bool cpu_uniform_ = false;            // uniform step below nominal
  std::uint64_t cpu_step_khz_ = 0;
  std::uint64_t imc_min_khz_ = 0;
  std::uint64_t imc_step_khz_ = 0;
  std::size_t imc_steps_ = 0;

  WorkDemand demand_{};
  bool demand_valid_ = false;
  std::vector<std::optional<PerfResult>> table_;  // [cpu * imc_steps + imc]
  // Single-entry cache for the one off-grid point the stretch path
  // produces: the dither-averaged uncore frequency, which repeats every
  // control round until the P-state cap, MSR window or demand moves.
  // Stores the exact model output for the exact key, so a hit is
  // bitwise-identical to the direct evaluation it replaces.
  bool offgrid_valid_ = false;
  std::uint64_t offgrid_cpu_khz_ = 0;
  std::uint64_t offgrid_imc_khz_ = 0;
  WorkDemand offgrid_demand_{};
  PerfResult offgrid_result_{};
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ear::simhw
