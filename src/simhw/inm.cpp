#include "simhw/inm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ear::simhw {

void NodeManagerCounter::deposit(Joules e, Secs dt) {
  EAR_CHECK_MSG(e.value >= 0.0 && dt.value >= 0.0,
                "energy/time must be non-negative");
  const double second_before = std::floor(elapsed_);
  const double power = dt.value > 0.0 ? e.value / dt.value : 0.0;
  exact_ += e;
  elapsed_ += dt.value;
  const double second_after = std::floor(elapsed_);
  if (second_after > second_before) {
    // Publish the value as of the last whole-second boundary, assuming
    // power was uniform across this deposit (1 s sampling in the BMC).
    const double overshoot = elapsed_ - second_after;
    const double published_exact = exact_.value - power * overshoot;
    published_ = static_cast<std::uint64_t>(published_exact);
    last_publish_second_ = second_after;
  }
}

}  // namespace ear::simhw
