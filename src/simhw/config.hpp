// Static description of a simulated compute node: topology, P-state and
// uncore tables, and the calibrated constants of the performance and power
// models. Factory functions provide the two node types the paper uses.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"
#include "simhw/pstate.hpp"

namespace ear::simhw {

using common::Freq;
using common::Watts;

/// Memory-subsystem model constants (per node).
struct MemoryModel {
  /// Sustainable node bandwidth with the uncore at its maximum frequency.
  double peak_gbps = 230.0;
  /// Bandwidth scales roughly linearly with uncore frequency below the
  /// DRAM limit: available = min(peak, slope_gbps_per_ghz * f_imc).
  double slope_gbps_per_ghz = 105.0;
  /// Fixed portion of a memory transaction's latency (core + DRAM), ns.
  double fixed_latency_ns = 51.0;
  /// Uncore traversal cycles (LLC + mesh + IMC queue); latency contribution
  /// is cycles / f_imc, so lowering the uncore clock lengthens every miss.
  double uncore_latency_cycles = 78.0;
};

/// Voltage/frequency and power model constants. The defaults are calibrated
/// so that catalog workloads land near the paper's Tables II/V DC powers.
struct PowerModel {
  /// Node baseline outside the packages: fans, VRs, disks, NIC, BMC.
  double base_watts = 70.0;
  /// Core voltage: V(f) = v0 + v1 * f_ghz.
  double core_v0 = 0.62;
  double core_v1 = 0.16;
  /// Per-core leakage at V: leak_w_per_v * V.
  double core_leak_w_per_v = 0.30;
  /// Per-core dynamic power: c_dyn * f_ghz * V^2 * activity.
  double core_dyn_w = 0.9;
  /// Activity from IPC: act = act0 + act1 * ipc (clamped). Stalled cores
  /// keep most of the out-of-order machinery switching, so the IPC
  /// dependence is mild — memory-bound codes still have a large DVFS
  /// power lever (the paper's HPCG saves ~11% DC power from CPU scaling).
  double act0 = 0.75;
  double act1 = 0.18;
  /// Extra activity multiplier when executing AVX512 (wide units powered).
  double avx512_act_bonus = 0.85;
  /// Idle (C-state) power per core.
  double core_idle_watts = 0.35;
  /// Uncore voltage: Vu(f) = u_v0 + u_v1 * f_ghz.
  double uncore_v0 = 0.70;
  double uncore_v1 = 0.12;
  /// Per-socket uncore leakage (W per volt) and dynamic coefficient.
  double uncore_leak_w_per_v = 10.0;
  double uncore_dyn_w = 30.0;
  /// Uncore activity floor/slope vs bandwidth utilisation.
  double uncore_act0 = 0.55;
  double uncore_act1 = 0.25;
  /// DRAM: background + per-GB/s cost.
  double dram_background_watts = 20.0;
  double dram_w_per_gbps = 0.15;
  /// GPU power (only populated on GPU nodes).
  double gpu_idle_watts = 0.0;
  double gpu_busy_watts = 0.0;
  std::size_t gpu_count = 0;
};

/// Complete static node description.
struct NodeConfig {
  std::string name;
  std::size_t sockets = 2;
  std::size_t cores_per_socket = 20;
  PstateTable pstates;
  UncoreRange uncore;
  MemoryModel memory;
  PowerModel power;
  /// IPC of a busy-wait (MPI/GPU polling) loop, for spin-phase accounting.
  /// Pause-based spin loops retire fast; ~2 IPC matches the paper's CUDA
  /// kernel CPIs of ~0.5.
  double spin_ipc = 2.0;

  [[nodiscard]] std::size_t total_cores() const {
    return sockets * cores_per_socket;
  }
};

/// Lenovo SD530 node: 2x Xeon Gold 6148 (20c, 2.40 GHz nominal, AVX512
/// all-core licence 2.2 GHz), uncore 1.2-2.4 GHz — the paper's main testbed.
[[nodiscard]] NodeConfig make_skylake_6148_node();

/// GPU node: 2x Xeon Gold 6142M (16c, 2.60 GHz) + 2x NVIDIA V100; same
/// uncore limits (1.2-2.4 GHz). Used for the paper's CUDA kernels.
[[nodiscard]] NodeConfig make_skylake_6142m_gpu_node();

/// Ice Lake-SP-style node (2x 32c, 2.6 GHz nominal, milder AVX512 licence
/// at 2.4 GHz, wider uncore window 0.8-2.4 GHz): the direction the
/// paper's conclusions point to next. Nothing in the stack is
/// Skylake-specific — policies, learning and searches follow the tables
/// in this config.
[[nodiscard]] NodeConfig make_icelake_8358_node();

}  // namespace ear::simhw
