// PMU counter accumulation. The EAR library derives its signature from
// exactly these quantities: retired instructions, core cycles, AVX512
// operations and DRAM CAS transactions (TPI/GB-s), per node.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace ear::simhw {

/// Monotonically increasing counters, node-aggregated (as EARD exposes
/// them to EARL). Doubles, because the simulator advances in fractional
/// iteration quantities; the >2^53 precision loss is irrelevant at the
/// magnitudes simulated.
struct PmuCounters {
  double instructions = 0.0;   // node total, incl. spin
  double cycles = 0.0;         // node total core cycles
  double avx512_ops = 0.0;     // node total AVX512 instructions
  double cas_transactions = 0.0;  // 64 B DRAM transactions
  double cpu_freq_cycles = 0.0;   // integral of f_cpu dt (for avg freq)
  double imc_freq_cycles = 0.0;   // integral of f_imc dt (for avg freq)
  double elapsed_seconds = 0.0;   // integral of wall time
  /// Time spent waiting (MPI progression / GPU sync), as EARL's PMPI and
  /// accelerator hooks report it. Wait time does not scale with the CPU
  /// clock, which the energy model's time projection exploits.
  double wait_seconds = 0.0;

  /// Average clocks over the accumulated window, derived from the
  /// frequency integrals. These are the only supported way to read the
  /// integrals as frequencies: consumers get a typed common::Freq, never
  /// a raw GHz scalar. Zero if no time has been accumulated.
  [[nodiscard]] common::Freq avg_cpu_freq() const {
    return freq_from_integral(cpu_freq_cycles);
  }
  [[nodiscard]] common::Freq avg_imc_freq() const {
    return freq_from_integral(imc_freq_cycles);
  }

  PmuCounters& operator+=(const PmuCounters& o) {
    instructions += o.instructions;
    cycles += o.cycles;
    avx512_ops += o.avx512_ops;
    cas_transactions += o.cas_transactions;
    cpu_freq_cycles += o.cpu_freq_cycles;
    imc_freq_cycles += o.imc_freq_cycles;
    elapsed_seconds += o.elapsed_seconds;
    wait_seconds += o.wait_seconds;
    return *this;
  }
  friend PmuCounters operator-(PmuCounters a, const PmuCounters& b) {
    a.instructions -= b.instructions;
    a.cycles -= b.cycles;
    a.avx512_ops -= b.avx512_ops;
    a.cas_transactions -= b.cas_transactions;
    a.cpu_freq_cycles -= b.cpu_freq_cycles;
    a.imc_freq_cycles -= b.imc_freq_cycles;
    a.elapsed_seconds -= b.elapsed_seconds;
    a.wait_seconds -= b.wait_seconds;
    return a;
  }

 private:
  /// The integrals accumulate kHz-weighted wall time, so the window
  /// average rounds to the nearest kHz.
  [[nodiscard]] common::Freq freq_from_integral(double khz_seconds) const {
    if (elapsed_seconds <= 0.0) return common::Freq{};
    return common::Freq::khz(
        static_cast<std::uint64_t>(khz_seconds / elapsed_seconds + 0.5));
  }
};

}  // namespace ear::simhw
