#include "simhw/rapl.hpp"

#include <vector>

#include "common/error.hpp"

namespace ear::simhw {

void RaplCounter::deposit(Joules e) {
  EAR_CHECK_MSG(e.value >= 0.0, "energy cannot decrease");
  const double units = e.value / kJoulesPerUnit + residue_;
  const auto whole = static_cast<std::uint64_t>(units);
  residue_ = units - static_cast<double>(whole);
  units_ += whole;
}

Joules RaplCounter::delta(std::uint32_t before, std::uint32_t after) {
  const std::uint64_t diff =
      after >= before
          ? static_cast<std::uint64_t>(after - before)
          : kWrap - before + after;  // exactly one wrap assumed
  return Joules{static_cast<double>(diff) * kJoulesPerUnit};
}

void RaplDomains::deposit_pkg(std::size_t socket, Joules e) {
  EAR_CHECK(socket < pkg_.size());
  pkg_[socket].deposit(e);
}

void RaplDomains::deposit_dram(Joules e) { dram_.deposit(e); }

const RaplCounter& RaplDomains::pkg(std::size_t socket) const {
  EAR_CHECK(socket < pkg_.size());
  return pkg_[socket];
}

}  // namespace ear::simhw
