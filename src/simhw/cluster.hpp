// A set of identical SimNodes, as one job allocation sees it.
#pragma once

#include <cstdint>
#include <vector>

#include "simhw/node.hpp"

namespace ear::simhw {

class Cluster {
 public:
  /// Build `count` nodes from the same config, independently seeded.
  Cluster(const NodeConfig& cfg, std::size_t count, std::uint64_t seed,
          NoiseModel noise = {}, HwUfsParams ufs = {});

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] SimNode& node(std::size_t i);
  [[nodiscard]] const SimNode& node(std::size_t i) const;

  /// Total DC energy across nodes (exact, ground truth).
  [[nodiscard]] common::Joules total_energy() const;
  /// Slowest node clock (job wall time follows the slowest node).
  [[nodiscard]] common::Secs max_clock() const;

  auto begin() { return nodes_.begin(); }
  auto end() { return nodes_.end(); }
  auto begin() const { return nodes_.begin(); }
  auto end() const { return nodes_.end(); }

 private:
  std::vector<SimNode> nodes_;
};

}  // namespace ear::simhw
