#include "simhw/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ear::simhw {

Cluster::Cluster(const NodeConfig& cfg, std::size_t count, std::uint64_t seed,
                 NoiseModel noise, HwUfsParams ufs) {
  EAR_CHECK_MSG(count > 0, "a cluster needs at least one node");
  common::SplitMix64 seeder(seed);
  nodes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes_.emplace_back(cfg, seeder.next(), noise, ufs);
  }
}

SimNode& Cluster::node(std::size_t i) {
  EAR_CHECK(i < nodes_.size());
  return nodes_[i];
}

const SimNode& Cluster::node(std::size_t i) const {
  EAR_CHECK(i < nodes_.size());
  return nodes_[i];
}

common::Joules Cluster::total_energy() const {
  common::Joules total{};
  for (const auto& n : nodes_) total += n.inm().exact();
  return total;
}

common::Secs Cluster::max_clock() const {
  common::Secs max{};
  for (const auto& n : nodes_) max = std::max(max, n.clock());
  return max;
}

}  // namespace ear::simhw
