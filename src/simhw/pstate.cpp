#include "simhw/pstate.hpp"

#include "common/error.hpp"

namespace ear::simhw {

PstateTable::PstateTable(Freq turbo, Freq nominal, Freq min, Freq step,
                         Freq avx512_all_core_cap)
    : avx512_cap_(avx512_all_core_cap) {
  EAR_CHECK_MSG(turbo >= nominal && nominal >= min, "turbo >= nominal >= min");
  EAR_CHECK_MSG(step.as_khz() > 0, "pstate step must be positive");
  freqs_.push_back(turbo);
  for (Freq f = nominal;; f = f - step) {
    freqs_.push_back(f);
    // Stop before stepping past (or under) min: Freq subtraction treats
    // underflow as a contract violation.
    if (f == min || f < min + step) break;
  }
  EAR_CHECK_MSG(freqs_.back() == min, "min must be reachable from nominal in steps");
  EAR_CHECK_MSG(avx512_cap_ <= nominal && avx512_cap_ >= min,
                "AVX512 cap must lie within the table");
}

Pstate PstateTable::pstate_for(Freq f) const {
  if (f >= freqs_.front()) return 0;
  // Find the highest frequency not exceeding f. Skip turbo (index 0): a
  // request below turbo maps into the nominal-and-down ladder.
  for (Pstate p = 1; p < freqs_.size(); ++p) {
    if (freqs_[p] <= f) return p;
  }
  return freqs_.size() - 1;
}

UncoreRange::UncoreRange(Freq min, Freq max, Freq step)
    : min_(min), max_(max), step_(step) {
  EAR_CHECK_MSG(max >= min, "uncore max >= min");
  EAR_CHECK_MSG(step.as_khz() > 0, "uncore step must be positive");
  EAR_CHECK_MSG((max.as_khz() - min.as_khz()) % step.as_khz() == 0,
                "uncore range must be an integer number of steps");
}

std::size_t UncoreRange::num_steps() const {
  return static_cast<std::size_t>((max_.as_khz() - min_.as_khz()) /
                                  step_.as_khz()) +
         1;
}

std::vector<Freq> UncoreRange::descending() const {
  std::vector<Freq> out;
  out.reserve(num_steps());
  for (Freq f = max_;; f = Freq::khz(f.as_khz() - step_.as_khz())) {
    out.push_back(f);
    if (f == min_) break;
  }
  return out;
}

}  // namespace ear::simhw
