// Model Specific Register (MSR) emulation.
//
// The real EAR daemon writes uncore limits through /dev/cpu/*/msr. We
// emulate the per-socket register file and in particular MSR 0x620
// (UNCORE_RATIO_LIMIT): bits 6:0 hold the *maximum* uncore ratio and bits
// 14:8 the *minimum* uncore ratio, in units of 100 MHz (SDM vol. 4).
// Setting min == max pins the uncore clock; leaving a range lets the
// hardware UFS control loop pick a value inside it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/units.hpp"

namespace ear::simhw {

using common::Freq;

/// Well-known MSR addresses used by the library.
inline constexpr std::uint32_t kMsrUncoreRatioLimit = 0x620;
inline constexpr std::uint32_t kMsrEnergyPerfBias = 0x1B0;  // IA32_ENERGY_PERF_BIAS

/// Decoded view of UNCORE_RATIO_LIMIT.
struct UncoreRatioLimit {
  Freq max_freq;  // bits 6:0  * 100 MHz
  Freq min_freq;  // bits 14:8 * 100 MHz

  /// Packs the limits into the register layout. Ratios that do not fit
  /// the 7-bit fields (or an inverted window) are a contract violation in
  /// checked builds; with contracts compiled out the ratios saturate at
  /// the field maximum instead of corrupting the adjacent field.
  [[nodiscard]] std::uint64_t encode() const;
  /// Unpacks a register value; reserved bits must be clear.
  [[nodiscard]] static UncoreRatioLimit decode(std::uint64_t raw);
  friend bool operator==(const UncoreRatioLimit&,
                         const UncoreRatioLimit&) = default;
};

/// Fault-injection hook: when installed, every validated write is offered
/// to the interceptor, which may swallow it (the fault layer models flaky
/// MSR access this way). Null by default — the unarmed hot path costs a
/// single pointer test.
class MsrWriteInterceptor {
 public:
  virtual ~MsrWriteInterceptor() = default;
  /// Return false to drop the write (it still counts as issued, exactly
  /// like a write to a locked register).
  [[nodiscard]] virtual bool allow_write(std::uint32_t addr,
                                         std::uint64_t value) = 0;
};

/// Per-socket register file. Unknown registers read as 0, like a freshly
/// cleared MSR; writes create them. Registers may be *locked* (as BIOSes
/// lock UNCORE_RATIO_LIMIT on some platforms): writes to a locked
/// register are silently dropped — software must read back to notice.
class MsrFile {
 public:
  [[nodiscard]] std::uint64_t read(std::uint32_t addr) const;
  void write(std::uint32_t addr, std::uint64_t value);

  /// BIOS-style lock: subsequent writes to `addr` are ignored.
  void lock(std::uint32_t addr);
  [[nodiscard]] bool is_locked(std::uint32_t addr) const;

  /// Install (or clear, with nullptr) the fault-injection write hook.
  /// The interceptor must outlive its installation.
  void set_interceptor(MsrWriteInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Typed accessors for the uncore limit register.
  [[nodiscard]] UncoreRatioLimit uncore_limit() const;
  void set_uncore_limit(const UncoreRatioLimit& limit);

  /// Number of write operations performed (the paper's daemon counts MSR
  /// traffic; useful for overhead benches).
  [[nodiscard]] std::uint64_t write_count() const { return writes_; }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> regs_;
  std::unordered_set<std::uint32_t> locked_;
  std::uint64_t writes_ = 0;
  MsrWriteInterceptor* interceptor_ = nullptr;
  // Hot-register mirror. The governor and stretch paths read
  // UNCORE_RATIO_LIMIT and ENERGY_PERF_BIAS once per control step, and
  // the unordered_map find dominates those reads; landed writes keep
  // these fields coherent with regs_ so reads of the two hot addresses
  // (and the decoded uncore window) never touch the map. Zero-initial
  // values match the "unknown registers read as 0" contract.
  std::uint64_t uncore_raw_ = 0;
  UncoreRatioLimit uncore_decoded_{};
  std::uint64_t epb_raw_ = 0;
};

}  // namespace ear::simhw
