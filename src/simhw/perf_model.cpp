#include "simhw/perf_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ear::simhw {

namespace {
constexpr double kBytesPerTransaction = 64.0;
}

double available_bandwidth_gbps(const MemoryModel& mem, Freq f_imc) {
  return std::min(mem.peak_gbps, mem.slope_gbps_per_ghz * f_imc.as_ghz());
}

PerfResult evaluate_iteration(const NodeConfig& cfg, const WorkDemand& demand,
                              Freq f_cpu, Freq f_imc) {
  EAR_CHECK_MSG(!f_cpu.is_zero() && !f_imc.is_zero(),
                "frequencies must be non-zero");
  EAR_CHECK_MSG(demand.active_cores <= cfg.total_cores(),
                "more active cores than the node has");
  EAR_CHECK_MSG(demand.active_cores > 0 || demand.instructions_per_core == 0.0,
                "instructions require at least one active core");

  const double f_hz = f_cpu.as_hz();
  const Freq f_avx = cfg.pstates.avx512_effective(f_cpu);

  // Compute phase: AVX512 instructions execute at the licence-capped clock.
  const double t_compute =
      demand.instructions_per_core * demand.cpi_core *
      ((1.0 - demand.vpi) / f_hz + demand.vpi / f_avx.as_hz());

  // Latency-serialised memory stalls: each transaction's non-overlapped
  // stall pays a fixed part plus the uncore traversal, which stretches as
  // f_imc drops.
  const double transactions = demand.bytes / kBytesPerTransaction;
  const double latency_seconds =
      demand.lat_fixed_ns_per_txn * 1e-9 +
      demand.lat_uncore_cycles_per_txn / f_imc.as_hz();
  const double t_lat =
      demand.active_cores == 0
          ? 0.0
          : (transactions / static_cast<double>(demand.active_cores)) *
                latency_seconds;

  // Bandwidth phase: node traffic through the uncore-limited roofline.
  const double bw_gbps = available_bandwidth_gbps(cfg.memory, f_imc);
  const double t_bw = demand.bytes / (bw_gbps * 1e9);

  const double t_busy = std::max(t_compute + t_lat, t_bw);
  const double t_wait = demand.comm_seconds + demand.gpu_seconds;
  const double t_iter = t_busy + t_wait;
  EAR_CHECK_MSG(t_iter > 0.0, "iteration must take non-zero time");

  // Cycle accounting (per active core). Compute cycles are fixed by CPI;
  // latency and bandwidth stalls, and busy-wait spinning, accrue cycles at
  // the core clock without retiring application instructions.
  const double cycles_compute =
      demand.instructions_per_core * demand.cpi_core;
  const double stall_seconds = t_busy - t_compute;  // includes t_lat
  const double cycles_stall = stall_seconds * f_hz;
  const double cycles_wait = t_wait * f_hz;
  const double spin_ipc =
      demand.spin_ipc_override > 0.0 ? demand.spin_ipc_override : cfg.spin_ipc;
  const double inst_spin = spin_ipc * cycles_wait;
  const double cycles_pc = cycles_compute + cycles_stall + cycles_wait;
  const double inst_pc = demand.instructions_per_core + inst_spin;

  PerfResult r;
  r.iter_time = Secs{t_iter};
  r.cycles_per_core = cycles_pc;
  r.instructions_per_core = inst_pc;
  r.bytes = demand.bytes;
  r.cpi = inst_pc > 0.0 ? cycles_pc / inst_pc : 0.0;
  const double node_instructions =
      inst_pc * static_cast<double>(std::max<std::size_t>(demand.active_cores, 1));
  r.tpi = node_instructions > 0.0 ? transactions / node_instructions : 0.0;
  r.gbps = demand.bytes / t_iter / 1e9;
  r.bw_utilisation = bw_gbps > 0.0 ? r.gbps / bw_gbps : 0.0;
  r.avx512_fraction =
      inst_pc > 0.0 ? demand.vpi * demand.instructions_per_core / inst_pc : 0.0;
  r.compute_time = Secs{t_compute + t_lat};
  r.bandwidth_time = Secs{t_bw};
  r.bandwidth_bound = t_bw > t_compute + t_lat;
  return r;
}

}  // namespace ear::simhw
