// Event-time view of a fault plan.
//
// The reference facility loop re-scans every spec every control round to
// ask "is anything active right now?" — tick-time injection. The event
// core instead wants the plan as a set of *boundary events*: the rounds
// at which some spec's [start_s, end_s) activity window opens or closes.
// Between two consecutive boundaries the active-spec set is constant, so
// a multi-round stretch can be integrated without consulting the plan,
// and rounds with no active spec skip the fault phase entirely — without
// changing which (spec, target, round) draws happen, since those only
// ever occur inside activity windows in both engines.
#pragma once

#include <cstddef>
#include <vector>

#include "faults/fault_plan.hpp"

namespace ear::faults {

class FaultSchedule {
 public:
  /// Quantise the plan's dropout windows onto the facility's control
  /// rounds: a spec is active at round r iff it is active at time
  /// r * round_s (exactly the reference loop's per-round test).
  FaultSchedule(const FaultPlan& plan, double round_s, double max_sim_s);

  /// Any spec active at round `r`'s start? Constant between boundaries.
  [[nodiscard]] bool any_active(std::size_t round) const;

  /// First boundary round strictly after `round` (a round where the
  /// active-spec set may change), or `npos` when the set is final.
  [[nodiscard]] std::size_t next_boundary_after(std::size_t round) const;

  /// All boundary rounds, ascending and deduplicated (event-queue seeds).
  [[nodiscard]] const std::vector<std::size_t>& boundaries() const {
    return boundaries_;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<std::size_t> boundaries_;  // ascending, unique
  // Activity of the whole plan over [boundary[i], boundary[i+1]) spans;
  // span 0 covers [0, boundary[0]).
  std::vector<bool> span_active_;
};

}  // namespace ear::faults
