// Fault accounting shared between the injector (what was injected) and
// the runtime (what was detected and recovered). Kept in a header of its
// own so sim::RunResult can embed a report without pulling in the
// injector machinery.
#pragma once

#include <cstdint>
#include <vector>

namespace ear::faults {

/// The fault families the injector can schedule.
enum class FaultFamily : std::uint8_t {
  kMsrDrop,       // intermittent MSR write drops
  kMsrLock,       // mid-run BIOS-style register lock
  kInmStuck,      // node energy counter freezes (stuck-at)
  kInmNoise,      // bursty DC-power sensor noise
  kPmuGlitch,     // TSC jumps / APERF-MPERF corruption
  kSnapshotDrop,  // daemon serves a stale counter snapshot
  kNodeDropout,   // node power reading never reaches EARGM
  kIslandDropout, // a whole island goes dark towards the cluster EARGM
};

/// One injected fault occurrence, for the deterministic timeline.
struct FaultEvent {
  double t_s = 0.0;
  std::uint32_t node = 0;
  FaultFamily family = FaultFamily::kMsrDrop;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Injected / detected / recovered counters for one run (or summed over
/// runs). All fields are uint64 so the struct stays padding-free when
/// embedded in memcmp-compared result structs.
struct FaultReport {
  // Injected (counted by the FaultInjector).
  std::uint64_t msr_drops = 0;        // MSR writes swallowed
  std::uint64_t msr_locks = 0;        // registers locked mid-run
  std::uint64_t snapshot_faults = 0;  // corrupted/stale snapshots served
  std::uint64_t dropped_readings = 0; // power readings hidden from EARGM
  std::uint64_t island_dropouts = 0;  // island-rounds dark to the cluster

  // Detected (counted by the resilience paths).
  std::uint64_t verify_failures = 0;  // daemon read-back mismatches
  std::uint64_t rejected_windows = 0; // EARL screening rejections
  std::uint64_t missed_readings = 0;  // EARGM NaN substitutions

  // Recovered (counted by the degradation / re-anchor paths).
  std::uint64_t reprobes = 0;         // daemon probe-cache invalidations
  std::uint64_t fallbacks = 0;        // sessions degraded to HW-UFS/CPU-only
  std::uint64_t reanchors = 0;        // state machine re-anchored
  std::uint64_t unsettled_nodes = 0;  // neither settled nor degraded

  [[nodiscard]] std::uint64_t injected() const {
    return msr_drops + msr_locks + snapshot_faults + dropped_readings +
           island_dropouts;
  }
  [[nodiscard]] std::uint64_t detected() const {
    return verify_failures + rejected_windows + missed_readings;
  }
  [[nodiscard]] std::uint64_t recovered() const {
    return reprobes + fallbacks + reanchors;
  }

  FaultReport& operator+=(const FaultReport& o) {
    msr_drops += o.msr_drops;
    msr_locks += o.msr_locks;
    snapshot_faults += o.snapshot_faults;
    dropped_readings += o.dropped_readings;
    island_dropouts += o.island_dropouts;
    verify_failures += o.verify_failures;
    rejected_windows += o.rejected_windows;
    missed_readings += o.missed_readings;
    reprobes += o.reprobes;
    fallbacks += o.fallbacks;
    reanchors += o.reanchors;
    unsettled_nodes += o.unsettled_nodes;
    return *this;
  }
  friend bool operator==(const FaultReport&, const FaultReport&) = default;
};

}  // namespace ear::faults
