// FaultInjector: applies a FaultPlan to a simulated cluster through the
// hook points in simhw::MsrFile (write interception) and eard::NodeDaemon
// (snapshot filtering), plus two polled paths driven by the experiment
// loop (scheduled register locks, EARGM reading dropouts).
//
// Determinism: every node gets its own RNG stream derived from the
// injector seed with common::mix_seed, and runs execute single-threaded,
// so the same (seed, plan) pair always produces the identical fault
// timeline — independent of how many worker threads a campaign uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "eard/eard.hpp"
#include "faults/fault_plan.hpp"
#include "simhw/node.hpp"

namespace ear::faults {

class FaultInjector {
 public:
  /// The plan is captured by reference; it must outlive the injector
  /// (run_experiment keeps it in the config).
  FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                std::size_t nodes);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Wire node `index` into the injector: installs an MSR write
  /// interceptor on every socket and a snapshot filter on the daemon.
  /// The injector must outlive the node and daemon hooks' use.
  void attach(std::size_t index, simhw::SimNode& hw,
              eard::NodeDaemon& daemon);

  /// Apply scheduled one-shot faults (mid-run register locks) that are
  /// due at node `index`'s current simulated clock. Called once per
  /// iteration by the experiment loop.
  void poll(std::size_t index);

  /// EARGM-path fault: true when node `index`'s power reading for the
  /// current round is scheduled to go missing.
  [[nodiscard]] bool power_reading_dropped(std::size_t index);

  /// Injected-fault counters (the detected/recovered fields stay zero;
  /// run_experiment fills them from the resilience layers).
  [[nodiscard]] const FaultReport& stats() const { return stats_; }
  /// Chronological record of every injected fault occurrence.
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

 private:
  struct MsrTap;
  struct SnapshotTap;
  struct NodeState;

  [[nodiscard]] bool allow_msr_write(std::size_t node, std::size_t socket,
                                     std::uint32_t addr);
  [[nodiscard]] metrics::Snapshot filter_snapshot(
      std::size_t node, const metrics::Snapshot& clean);
  void record(double t_s, std::size_t node, FaultFamily family);

  const FaultPlan& plan_;
  std::vector<NodeState> nodes_;
  std::vector<std::unique_ptr<MsrTap>> msr_taps_;
  std::vector<std::unique_ptr<SnapshotTap>> snapshot_taps_;
  FaultReport stats_;
  std::vector<FaultEvent> events_;
};

}  // namespace ear::faults
