#include "faults/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace ear::faults {

namespace {

/// First round index whose start time t = r * round_s satisfies t >= s.
/// Open-ended specs (end_s ~ 1e30) land far past any horizon; saturate
/// instead of overflowing the size_t cast.
std::size_t round_at_or_after(double s, double round_s) {
  if (s <= 0.0) return 0;
  const double r = std::ceil(s / round_s);
  if (r >= static_cast<double>(FaultSchedule::npos / 2)) {
    return FaultSchedule::npos;
  }
  return static_cast<std::size_t>(r);
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultPlan& plan, double round_s,
                             double max_sim_s) {
  const std::size_t last_round =
      round_s > 0.0 ? static_cast<std::size_t>(max_sim_s / round_s) + 1 : 0;
  for (const FaultSpec& f : plan.specs) {
    if (f.family != FaultFamily::kNodeDropout &&
        f.family != FaultFamily::kIslandDropout) {
      continue;  // other families live in the per-node injector
    }
    // active_at(r * round_s) flips at the first round >= start and the
    // first round >= end; clamp to the horizon so an open-ended spec
    // does not seed an unreachable event.
    const std::size_t open = round_at_or_after(f.start_s, round_s);
    const std::size_t close = round_at_or_after(f.end_s, round_s);
    if (open <= last_round) boundaries_.push_back(open);
    if (close <= last_round) boundaries_.push_back(close);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());

  // Evaluate plan activity once per span (it is constant inside one).
  span_active_.resize(boundaries_.size() + 1, false);
  for (std::size_t s = 0; s <= boundaries_.size(); ++s) {
    const std::size_t probe_round = s == 0 ? 0 : boundaries_[s - 1];
    const double t = static_cast<double>(probe_round) * round_s;
    for (const FaultSpec& f : plan.specs) {
      if (f.family != FaultFamily::kNodeDropout &&
          f.family != FaultFamily::kIslandDropout) {
        continue;
      }
      if (f.active_at(t)) {
        span_active_[s] = true;
        break;
      }
    }
  }
}

bool FaultSchedule::any_active(std::size_t round) const {
  // Span index: number of boundaries at or before `round`.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                                   round);
  return span_active_[static_cast<std::size_t>(it - boundaries_.begin())];
}

std::size_t FaultSchedule::next_boundary_after(std::size_t round) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                                   round);
  return it == boundaries_.end() ? npos : *it;
}

}  // namespace ear::faults
