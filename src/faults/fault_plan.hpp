// Fault plans: deterministic, seed-driven fault schedules for the
// simulated cluster.
//
// The paper's whole control loop rests on two privileged operations —
// reading hardware counters and writing MSR 0x620 through the node daemon
// — and those are exactly the operations that misbehave on real Skylake
// fleets: BIOS-locked registers, RAPL/INM counters that stick or wrap,
// glitchy DC-power sensors, daemons that miss snapshots. A FaultPlan
// describes *when* and *where* such faults happen over simulated time; the
// FaultInjector (injector.hpp) applies them through hook points in
// simhw::MsrFile and eard::NodeDaemon. Plans are parsed from the same
// INI-style text format as workload spec files:
//
//   # one section per scheduled fault
//   [msr_drop]
//   node = 0          ; -1 (default) = every node
//   socket = -1       ; -1 = every socket
//   start = 20        ; active window [start, end) in simulated seconds
//   end = 60
//   probability = 0.5 ; per-write drop chance
//
//   [msr_lock]
//   node = 1
//   at = 30           ; lock the register at t = 30 s
//
//   [inm_stuck]       ; energy counter freezes inside the window
//   [inm_noise]       ; bursty DC-sensor noise; magnitude = joules
//   [pmu_glitch]      ; TSC jumps / APERF-MPERF corruption
//   [snapshot_drop]   ; daemon serves a stale snapshot
//   [node_dropout]    ; node's power reading never reaches EARGM
//
//   [island_dropout]  ; a whole island's report stream goes dark towards
//   island = 1        ;   the cluster-tier EARGM; -1 (default) = every
//   start = 10        ;   island. Applied by sim::Facility (the per-node
//   end = 20          ;   injector has no notion of islands).
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "faults/report.hpp"

namespace ear::faults {

/// One scheduled fault: a family plus its targeting and timing.
struct FaultSpec {
  FaultFamily family = FaultFamily::kMsrDrop;
  /// Target node index; negative = all nodes.
  int node = -1;
  /// Target socket for MSR faults; negative = all sockets.
  int socket = -1;
  /// Target island for island_dropout; negative = all islands.
  int island = -1;
  /// Active window in simulated seconds: [start_s, end_s).
  double start_s = 0.0;
  double end_s = 1e30;
  /// Per-event chance (per MSR write / snapshot / reading) in [0, 1].
  double probability = 1.0;
  /// Family-specific magnitude: joules for inm_noise, seconds (clock
  /// jump) or relative counter distortion for pmu_glitch.
  double magnitude = 0.0;
  /// Register address for MSR faults.
  std::uint32_t reg = 0x620;

  [[nodiscard]] bool applies_to_node(std::size_t n) const {
    return node < 0 || static_cast<std::size_t>(node) == n;
  }
  [[nodiscard]] bool applies_to_socket(std::size_t s) const {
    return socket < 0 || static_cast<std::size_t>(socket) == s;
  }
  [[nodiscard]] bool applies_to_island(std::size_t i) const {
    return island < 0 || static_cast<std::size_t>(island) == i;
  }
  [[nodiscard]] bool active_at(double t_s) const {
    return t_s >= start_s && t_s < end_s;
  }
};

/// A parsed fault schedule. An empty plan arms nothing.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  [[nodiscard]] bool empty() const { return specs.empty(); }
  /// Distinct fault families present (acceptance: chaos campaigns cover
  /// at least four).
  [[nodiscard]] std::size_t family_count() const;
  [[nodiscard]] bool has_family(FaultFamily f) const;
};

/// Parse a plan from the INI-style stream. Throws common::ConfigError on
/// unknown sections/keys or invalid values.
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& in);

/// Load a plan from a file path.
[[nodiscard]] FaultPlan load_fault_plan(const std::string& path);

[[nodiscard]] const char* family_name(FaultFamily f);

}  // namespace ear::faults
