#include "faults/fault_plan.hpp"

#include <array>
#include <cstdlib>
#include <fstream>
#include <set>

#include "common/error.hpp"

namespace ear::faults {

using common::ConfigError;

namespace {

struct FamilyName {
  const char* name;
  FaultFamily family;
};

constexpr std::array<FamilyName, 8> kFamilies{{
    {"msr_drop", FaultFamily::kMsrDrop},
    {"msr_lock", FaultFamily::kMsrLock},
    {"inm_stuck", FaultFamily::kInmStuck},
    {"inm_noise", FaultFamily::kInmNoise},
    {"pmu_glitch", FaultFamily::kPmuGlitch},
    {"snapshot_drop", FaultFamily::kSnapshotDrop},
    {"node_dropout", FaultFamily::kNodeDropout},
    {"island_dropout", FaultFamily::kIslandDropout},
}};

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

double parse_number(const std::string& key, const std::string& value,
                    int line) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw ConfigError("fault plan line " + std::to_string(line) + ": key '" +
                      key + "' expects a number, got '" + value + "'");
  }
  return v;
}

void apply(FaultSpec& f, const std::string& key, const std::string& value,
           int line) {
  auto num = [&] { return parse_number(key, value, line); };
  if (key == "node") {
    f.node = static_cast<int>(num());
  } else if (key == "socket") {
    f.socket = static_cast<int>(num());
  } else if (key == "island") {
    f.island = static_cast<int>(num());
  } else if (key == "start") {
    f.start_s = num();
  } else if (key == "end") {
    f.end_s = num();
  } else if (key == "at") {
    // One-shot shorthand (mid-run locks): active from this instant on.
    f.start_s = num();
  } else if (key == "probability") {
    f.probability = num();
    if (f.probability < 0.0 || f.probability > 1.0) {
      throw ConfigError("fault plan line " + std::to_string(line) +
                        ": probability must be in [0, 1]");
    }
  } else if (key == "magnitude") {
    f.magnitude = num();
    if (f.magnitude < 0.0) {
      throw ConfigError("fault plan line " + std::to_string(line) +
                        ": magnitude must be non-negative");
    }
  } else if (key == "register") {
    const double v = num();
    if (v < 0.0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
      throw ConfigError("fault plan line " + std::to_string(line) +
                        ": register expects a non-negative integer");
    }
    f.reg = static_cast<std::uint32_t>(v);
  } else {
    throw ConfigError("fault plan line " + std::to_string(line) +
                      ": unknown key '" + key + "'");
  }
}

void validate(const FaultSpec& f, int line) {
  if (f.end_s <= f.start_s) {
    throw ConfigError("fault plan line " + std::to_string(line) +
                      ": empty fault window (end <= start)");
  }
  if (f.family == FaultFamily::kInmNoise && f.magnitude <= 0.0) {
    throw ConfigError("fault plan line " + std::to_string(line) +
                      ": inm_noise needs a magnitude (joules)");
  }
}

}  // namespace

const char* family_name(FaultFamily f) {
  for (const auto& [name, family] : kFamilies) {
    if (family == f) return name;
  }
  return "unknown";
}

std::size_t FaultPlan::family_count() const {
  std::set<FaultFamily> seen;
  for (const FaultSpec& f : specs) seen.insert(f.family);
  return seen.size();
}

bool FaultPlan::has_family(FaultFamily f) const {
  for (const FaultSpec& s : specs) {
    if (s.family == f) return true;
  }
  return false;
}

FaultPlan parse_fault_plan(std::istream& in) {
  FaultPlan plan;
  std::string raw;
  int line = 0;
  int section_line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find_first_of("#;");
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string s = trim(raw);
    if (s.empty()) continue;

    if (s.front() == '[') {
      if (s.back() != ']' || s.size() < 3) {
        throw ConfigError("fault plan line " + std::to_string(line) +
                          ": malformed section header");
      }
      if (!plan.specs.empty()) validate(plan.specs.back(), section_line);
      const std::string name = trim(s.substr(1, s.size() - 2));
      FaultSpec spec;
      bool known = false;
      for (const auto& [fname, family] : kFamilies) {
        if (name == fname) {
          spec.family = family;
          known = true;
          break;
        }
      }
      if (!known) {
        throw ConfigError("fault plan line " + std::to_string(line) +
                          ": unknown fault family '" + name + "'");
      }
      section_line = line;
      plan.specs.push_back(spec);
      continue;
    }

    if (plan.specs.empty()) {
      throw ConfigError("fault plan line " + std::to_string(line) +
                        ": key before any [fault] section");
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fault plan line " + std::to_string(line) +
                        ": expected key = value");
    }
    const std::string key = trim(s.substr(0, eq));
    const std::string value = trim(s.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw ConfigError("fault plan line " + std::to_string(line) +
                        ": empty key or value");
    }
    apply(plan.specs.back(), key, value, line);
  }
  if (plan.specs.empty()) throw ConfigError("fault plan defines no faults");
  validate(plan.specs.back(), section_line);
  return plan;
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open fault plan: " + path);
  return parse_fault_plan(in);
}

}  // namespace ear::faults
