#include "faults/injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ear::faults {

struct FaultInjector::MsrTap : simhw::MsrWriteInterceptor {
  MsrTap(FaultInjector* inj, std::size_t node, std::size_t socket)
      : inj_(inj), node_(node), socket_(socket) {}
  bool allow_write(std::uint32_t addr, std::uint64_t /*value*/) override {
    return inj_->allow_msr_write(node_, socket_, addr);
  }
  FaultInjector* inj_;
  std::size_t node_;
  std::size_t socket_;
};

struct FaultInjector::SnapshotTap : eard::SnapshotFilter {
  SnapshotTap(FaultInjector* inj, std::size_t node)
      : inj_(inj), node_(node) {}
  metrics::Snapshot filter(const metrics::Snapshot& clean) override {
    return inj_->filter_snapshot(node_, clean);
  }
  FaultInjector* inj_;
  std::size_t node_;
};

struct FaultInjector::NodeState {
  simhw::SimNode* hw = nullptr;
  eard::NodeDaemon* daemon = nullptr;
  common::Rng rng{0};
  std::vector<char> lock_done;    // per plan-spec index
  metrics::Snapshot last_served{};
  bool served_any = false;
  std::uint64_t stuck_joules = 0;
  bool inm_latched = false;
};

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                             std::size_t nodes)
    : plan_(plan), nodes_(nodes) {
  for (std::size_t n = 0; n < nodes; ++n) {
    // One stream per node: the fault sequence a node sees depends only on
    // (seed, node), never on what other nodes drew.
    nodes_[n].rng = common::Rng(common::mix_seed(seed, n));
    nodes_[n].lock_done.assign(plan_.specs.size(), 0);
  }
}

FaultInjector::~FaultInjector() {
  for (NodeState& st : nodes_) {
    if (st.hw != nullptr) {
      for (std::size_t s = 0; s < st.hw->config().sockets; ++s) {
        st.hw->msr(s).set_interceptor(nullptr);
      }
    }
    if (st.daemon != nullptr) st.daemon->set_snapshot_filter(nullptr);
  }
}

void FaultInjector::attach(std::size_t index, simhw::SimNode& hw,
                           eard::NodeDaemon& daemon) {
  EAR_CHECK_MSG(index < nodes_.size(), "node index out of plan range");
  NodeState& st = nodes_[index];
  st.hw = &hw;
  st.daemon = &daemon;
  for (std::size_t s = 0; s < hw.config().sockets; ++s) {
    msr_taps_.push_back(std::make_unique<MsrTap>(this, index, s));
    hw.msr(s).set_interceptor(msr_taps_.back().get());
  }
  snapshot_taps_.push_back(std::make_unique<SnapshotTap>(this, index));
  daemon.set_snapshot_filter(snapshot_taps_.back().get());
}

void FaultInjector::record(double t_s, std::size_t node,
                           FaultFamily family) {
  events_.push_back(FaultEvent{
      .t_s = t_s, .node = static_cast<std::uint32_t>(node), .family = family});
}

bool FaultInjector::allow_msr_write(std::size_t node, std::size_t socket,
                                    std::uint32_t addr) {
  NodeState& st = nodes_[node];
  const double t = st.hw->clock().value;
  bool allowed = true;
  for (const FaultSpec& f : plan_.specs) {
    if (f.family != FaultFamily::kMsrDrop || f.reg != addr ||
        !f.applies_to_node(node) || !f.applies_to_socket(socket) ||
        !f.active_at(t)) {
      continue;
    }
    if (st.rng.uniform() < f.probability) {
      ++stats_.msr_drops;
      record(t, node, FaultFamily::kMsrDrop);
      allowed = false;
    }
  }
  return allowed;
}

void FaultInjector::poll(std::size_t index) {
  NodeState& st = nodes_[index];
  EAR_CHECK_MSG(st.hw != nullptr, "poll on an unattached node");
  const double t = st.hw->clock().value;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& f = plan_.specs[i];
    if (f.family != FaultFamily::kMsrLock || !f.applies_to_node(index)) {
      continue;
    }
    if (st.lock_done[i] != 0 || t < f.start_s) continue;
    for (std::size_t s = 0; s < st.hw->config().sockets; ++s) {
      if (f.applies_to_socket(s)) st.hw->msr(s).lock(f.reg);
    }
    st.lock_done[i] = 1;
    ++stats_.msr_locks;
    record(t, index, FaultFamily::kMsrLock);
  }
}

bool FaultInjector::power_reading_dropped(std::size_t index) {
  NodeState& st = nodes_[index];
  const double t = st.hw->clock().value;
  for (const FaultSpec& f : plan_.specs) {
    if (f.family != FaultFamily::kNodeDropout || !f.applies_to_node(index) ||
        !f.active_at(t)) {
      continue;
    }
    if (f.probability >= 1.0 || st.rng.uniform() < f.probability) {
      ++stats_.dropped_readings;
      record(t, index, FaultFamily::kNodeDropout);
      return true;
    }
  }
  return false;
}

metrics::Snapshot FaultInjector::filter_snapshot(
    std::size_t node, const metrics::Snapshot& clean) {
  NodeState& st = nodes_[node];
  metrics::Snapshot s = clean;
  const double t = clean.clock_s;
  bool stuck_active = false;
  for (const FaultSpec& f : plan_.specs) {
    if (!f.applies_to_node(node) || !f.active_at(t)) continue;
    switch (f.family) {
      case FaultFamily::kSnapshotDrop:
        // The daemon missed this snapshot and re-serves the previous one
        // (a stalled collector thread does exactly this).
        if (st.served_any && st.rng.uniform() < f.probability) {
          s = st.last_served;
          ++stats_.snapshot_faults;
          record(t, node, FaultFamily::kSnapshotDrop);
        }
        break;
      case FaultFamily::kInmStuck:
        // The energy counter freezes at its value when the window opens
        // and recovers (jumping forward, still monotonic) after it.
        if (!st.inm_latched) {
          st.inm_latched = true;
          st.stuck_joules = s.inm_joules;
        }
        stuck_active = true;
        if (s.inm_joules != st.stuck_joules) {
          s.inm_joules = st.stuck_joules;
          ++stats_.snapshot_faults;
          record(t, node, FaultFamily::kInmStuck);
        }
        break;
      case FaultFamily::kInmNoise:
        if (st.rng.uniform() < f.probability) {
          const double burst = st.rng.uniform(-1.0, 1.0) * f.magnitude;
          const double noisy = static_cast<double>(s.inm_joules) + burst;
          s.inm_joules =
              noisy <= 0.0 ? 0 : static_cast<std::uint64_t>(noisy);
          ++stats_.snapshot_faults;
          record(t, node, FaultFamily::kInmNoise);
        }
        break;
      case FaultFamily::kPmuGlitch:
        if (st.rng.uniform() < f.probability) {
          const double m = f.magnitude > 0.0 ? f.magnitude : 1.0;
          switch (st.rng.below(4)) {
            case 0: s.clock_s += m; break;  // TSC jumps forward m seconds
            case 1: s.clock_s -= m; break;  // ... or backward
            case 2:  // APERF-style inflation of the core clock integral
              s.pmu.cpu_freq_cycles *= 1.0 + m;
              break;
            case 3:  // uncore clock integral loses counts
              s.pmu.imc_freq_cycles *= std::max(0.0, 1.0 - m);
              break;
          }
          ++stats_.snapshot_faults;
          record(t, node, FaultFamily::kPmuGlitch);
        }
        break;
      case FaultFamily::kMsrDrop:
      case FaultFamily::kMsrLock:
      case FaultFamily::kNodeDropout:
      case FaultFamily::kIslandDropout:
        break;  // handled on their own paths (island faults by Facility)
    }
  }
  if (!stuck_active) st.inm_latched = false;  // the sensor recovered
  st.last_served = s;
  st.served_any = true;
  return s;
}

}  // namespace ear::faults
