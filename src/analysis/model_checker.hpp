// Explicit-state model checker for the Fig. 2 eUFS policy machine.
//
// The checker drives the *real* MinEnergyEufsPolicy object — not a
// re-implementation — through every signature in a finite abstract
// lattice (signature_lattice.hpp), BFS-enumerating the reachable
// (stage x selected-freqs x quantised-signature) space. Runtime
// assertions only ever see the traces our benchmarks happen to produce;
// here every reachable state sees every abstract input, so a policy edit
// that breaks the state machine on some exotic workload shape fails the
// build instead of a production run.
//
// Checked temporal properties:
//   P0 legal-edge    every observed stage change is an edge of the
//                    Fig. 2 table (MinEnergyEufsPolicy::legal_transition),
//                    and no apply() throws a contract violation.
//   P1 convergence   from every reachable state, holding any signature
//                    constant reaches READY (or a passing validation)
//                    within a bounded number of evaluations — the search
//                    cannot wedge.
//   P2 imc-step      the IMC window maximum only ever moves in single
//                    0.1 GHz grid steps, starting from the HW-selected
//                    frequency (or the range maximum for NG-U), and
//                    reopens fully on restart.
//   P3 revert-iff    while searching, the policy reverts to the last
//                    good setting iff CPI growth or GB/s drop exceeds
//                    unc_policy_th (otherwise it takes exactly the next
//                    step down, or settles at the floor).
//   P4 no-livelock   the transition graph minus restart edges and stable
//                    holds is acyclic: no oscillation between IMC steps,
//                    no cycle that dodges READY without a restart.
//   P5 determinism   replaying any input trace twice produces bitwise
//                    identical outputs (frequencies, stages, verdicts).
//
// State identity uses a live-variable reduction: per stage, only the
// fields that can influence future behaviour enter the fingerprint
// (e.g. a settled search's trial/ref are dead once STABLE, because the
// only outgoing edges re-anchor or restart). This is what keeps the
// stable-anchored state family linear in the lattice size instead of
// cubic. Frontier expansion is parallelised over common::ThreadPool
// workers with a sequential, index-ordered merge, so the explored set,
// the digest and every counterexample are bitwise identical at any
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/signature_lattice.hpp"
#include "policies/min_energy_eufs.hpp"
#include "policies/policy_api.hpp"
#include "simhw/pstate.hpp"

namespace ear::analysis {

using Stage = policies::MinEnergyEufsPolicy::Stage;

/// The checker's handle on a policy under test. clone() snapshots the
/// complete policy state, which is what lets BFS expand a frontier node
/// without replaying its whole input path. Tests wrap mutants (broken
/// transition tables, double IMC steps) behind the same interface to
/// prove the properties actually catch them.
class EufsInstance {
 public:
  virtual ~EufsInstance() = default;
  virtual policies::PolicyState apply(const metrics::Signature& sig,
                                      policies::NodeFreqs& out) = 0;
  [[nodiscard]] virtual bool validate(const metrics::Signature& sig) = 0;
  [[nodiscard]] virtual Stage stage() const = 0;
  [[nodiscard]] virtual simhw::Pstate current_pstate() const = 0;
  [[nodiscard]] virtual const policies::ImcSearch& imc_search() const = 0;
  [[nodiscard]] virtual const metrics::Signature& stable_reference()
      const = 0;
  [[nodiscard]] virtual std::unique_ptr<EufsInstance> clone() const = 0;
};

using InstanceFactory = std::function<std::unique_ptr<EufsInstance>()>;

/// The shipped policy behind the checker interface.
[[nodiscard]] std::unique_ptr<EufsInstance> make_real_eufs(
    policies::PolicyContext ctx);

/// Deterministic analytic energy model for the checker's environment:
/// T' = T * ((1-c) + c * f/f'), P' = P * ((1-d) + d * f'/f) with compute
/// share c and dynamic-power share d. Different (c, d) points steer the
/// CPU search to different P-states, so checking a handful of share
/// configurations covers the shortcut edge, the COMP_REF path and the
/// AVX512-capped selections.
[[nodiscard]] models::EnergyModelPtr make_share_model(
    simhw::PstateTable pstates, double compute_share, double dyn_share);

struct CheckerOptions {
  std::size_t jobs = 0;  ///< worker threads (0 = common::default_jobs()).
  /// Abort (as a violation) if exploration exceeds this many states —
  /// a state-identity bug shows up as an explosion, not a hang.
  std::size_t max_states = 500'000;
  /// P1 bound; 0 = auto: 2 * (pstates + uncore grid + slack), enough for
  /// one phase-change restart plus a full search.
  std::size_t convergence_bound = 0;
  /// Check every lattice point as a held signature in P1 instead of the
  /// reduced (cpi, gbps, imc) subset.
  bool convergence_full = false;
  /// P5 replays: every path to the first `determinism_samples` states in
  /// BFS order (plus the deepest state) is replayed twice and compared.
  std::size_t determinism_samples = 32;
  /// Stop recording violations past this many (exploration still
  /// completes, so the states/transitions numbers stay meaningful).
  std::size_t max_violations = 25;
  /// Expected search start: HW-guided (step below the observed IMC
  /// clock) or NG-U (range maximum). Must match the policy under test.
  bool hw_guided = true;
  double unc_policy_th = 0.02;
  double sig_change_th = 0.15;
  simhw::PstateTable pstates;
  simhw::UncoreRange uncore;
};

/// One evaluation in a counterexample trace.
struct TraceStep {
  std::size_t input = 0;  ///< lattice index fed at this step
  Stage stage_before = Stage::kCpuFreqSel;
  Stage stage_after = Stage::kCpuFreqSel;
  bool via_validate = false;  ///< STABLE hold: validate() passed, no apply
  policies::PolicyState verdict = policies::PolicyState::kContinue;
  policies::NodeFreqs out;
};

struct Violation {
  std::string property;  ///< "P2.imc-step", "P1.convergence", ...
  std::string detail;
  std::vector<TraceStep> trace;  ///< from the initial state
};

struct CheckReport {
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t max_depth = 0;
  std::size_t convergence_replays = 0;
  std::size_t determinism_replays = 0;
  /// FNV-1a digest over every transition record in deterministic merge
  /// order; two runs of the same configuration must agree bit for bit.
  std::uint64_t digest = 0;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

class ModelChecker {
 public:
  ModelChecker(InstanceFactory factory, SignatureLattice lattice,
               CheckerOptions opts);

  /// Exhaustive exploration + property checks. Deterministic at any
  /// thread count.
  [[nodiscard]] CheckReport run();

  /// Render a counterexample as a step table (common/table) with the
  /// lattice coordinates of every input.
  [[nodiscard]] std::string render_trace(const Violation& v) const;

  [[nodiscard]] const SignatureLattice& lattice() const { return lattice_; }

 private:
  InstanceFactory factory_;
  SignatureLattice lattice_;
  CheckerOptions opts_;
};

[[nodiscard]] const char* stage_name(Stage s);

}  // namespace ear::analysis
