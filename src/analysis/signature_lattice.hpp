// The abstract input space of the eUFS model checker (§V-B, Fig. 2).
//
// A policy consumes nothing but signatures, so its behaviour over *all*
// workloads is the behaviour over all signature sequences. That space is
// uncountable; the lattice quantises it into the finitely many points the
// policy can actually distinguish: CPI and GB/s deltas straddling the
// uncore guard threshold (±unc_policy_th) and the phase-change threshold
// (±sig_change_th), power deltas, the AVX512 VPI classes, and the
// observed (hardware-selected) IMC frequency on the uncore grid. Every
// point is a fully formed metrics::Signature, so the checker can feed the
// real policy object through the ordinary policy_api entry points.
//
// Enumeration is index-based and deterministic: point i is a pure
// function of (base, axes, i), which is what makes replays bitwise
// reproducible and counterexample traces exchangeable between runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "metrics/signature.hpp"

namespace ear::analysis {

/// One multiplier (or level) per axis; the lattice is their cross product.
struct LatticeAxes {
  /// CPI multipliers applied to the base CPI. Defaults straddle both the
  /// 2% uncore guard and the 15% phase-change threshold in each
  /// direction.
  std::vector<double> cpi_mults{0.80, 0.97, 1.00, 1.03, 1.20};
  /// GB/s multipliers; 0.97 is inside the default bandwidth guard
  /// (ref * (1 - 0.02)), 0.99 is not.
  std::vector<double> gbps_mults{0.80, 0.97, 0.99, 1.00, 1.20};
  /// DC power multipliers (shift the energy-model inputs).
  std::vector<double> power_mults{0.95, 1.10};
  /// AVX512 instruction mix: none, and a heavy-vector class that drives
  /// the licence-capped P-states.
  std::vector<double> vpi_levels{0.0, 0.35};
  /// Hardware-selected average uncore clocks (the HW-guided search start).
  std::vector<common::Freq> imc_observed{
      common::Freq::ghz(1.4), common::Freq::ghz(2.0), common::Freq::ghz(2.4)};
};

class SignatureLattice {
 public:
  SignatureLattice(metrics::Signature base, LatticeAxes axes);

  /// The paper's nominal signature shape (BQCD-like: CPI 0.5, 50 GB/s,
  /// 320 W, 1 s iterations) as the neutral centre of the lattice.
  [[nodiscard]] static metrics::Signature default_base();

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Point i as a complete, valid signature. Deterministic in i.
  [[nodiscard]] metrics::Signature at(std::size_t i) const;

  /// Human-readable coordinates of point i for counterexample traces,
  /// e.g. "cpi x1.03, gbps x0.97, pw x1.10, vpi 0.35, imc 2.00 GHz".
  [[nodiscard]] std::string describe(std::size_t i) const;

  /// Indices of the convergence-check subset: one point per distinct
  /// (cpi, gbps, imc) combination at neutral power/VPI. Bounded-liveness
  /// replays hold a signature constant, and the held value's power/VPI
  /// coordinates cannot change which guard trips, so checking them all
  /// would only multiply the replay count.
  [[nodiscard]] std::vector<std::size_t> convergence_subset() const;

  [[nodiscard]] const LatticeAxes& axes() const { return axes_; }

 private:
  struct Coords {
    std::size_t cpi, gbps, power, vpi, imc;
  };
  [[nodiscard]] Coords coords(std::size_t i) const;

  metrics::Signature base_;
  LatticeAxes axes_;
  std::size_t size_ = 0;
};

}  // namespace ear::analysis
