#include "analysis/model_checker.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "metrics/signature.hpp"

namespace ear::analysis {

namespace {

using common::Freq;
using metrics::Signature;
using policies::NodeFreqs;
using policies::PolicyState;

// --------------------------------------------------------------------
// Byte-exact serialisation: state keys, trace records and the digest all
// hash the same canonical bytes, so "equal" always means bitwise equal.
// --------------------------------------------------------------------

void feed_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

void feed_u64(std::string& out, std::uint64_t v) { feed_bytes(out, &v, sizeof v); }

void feed_double(std::string& out, double v) { feed_bytes(out, &v, sizeof v); }

void feed_signature(std::string& out, const Signature& s) {
  feed_double(out, s.iter_time_s);
  feed_double(out, s.cpi);
  feed_double(out, s.tpi);
  feed_double(out, s.gbps);
  feed_double(out, s.vpi);
  feed_double(out, s.wait_fraction);
  feed_double(out, s.dc_power_w);
  feed_u64(out, s.avg_cpu_freq.as_khz());
  feed_u64(out, s.avg_imc_freq.as_khz());
  feed_double(out, s.elapsed_s);
  feed_u64(out, s.iterations);
  out.push_back(s.valid ? 1 : 0);
}

void feed_freqs(std::string& out, const NodeFreqs& f) {
  feed_u64(out, f.cpu_pstate);
  feed_u64(out, f.imc_max.as_khz());
  feed_u64(out, f.imc_min.as_khz());
}

/// FNV-1a over an accumulated byte string.
std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Live-variable state identity: per stage, only the fields that can
/// influence future behaviour (plus the applied frequencies, which shape
/// the next measured signature and the step-discipline checks). Keeping
/// a settled search's trial/reference out of the STABLE key is what
/// collapses the stable-anchored family from cubic to linear in the
/// lattice size — those fields are reset before they are ever read
/// again (restart()).
std::string state_key(const EufsInstance& p, const NodeFreqs& env) {
  std::string k;
  k.reserve(160);
  const Stage st = p.stage();
  k.push_back(static_cast<char>(st));
  feed_freqs(k, env);
  feed_u64(k, p.current_pstate());
  switch (st) {
    case Stage::kCpuFreqSel:
    case Stage::kCompRef:
      break;  // imc_ and stable_ref_ are in their reset state here
    case Stage::kImcFreqSel: {
      const policies::ImcSearch& s = p.imc_search();
      k.push_back(s.started() ? 1 : 0);
      feed_u64(k, s.current_trial().as_khz());
      feed_u64(k, s.last_good().as_khz());
      feed_u64(k, s.steps_taken());
      feed_signature(k, s.reference());
      break;
    }
    case Stage::kStable:
      feed_signature(k, p.stable_reference());
      break;
  }
  return k;
}

std::string step_record(const TraceStep& t) {
  std::string r;
  r.reserve(64);
  feed_u64(r, t.input);
  r.push_back(static_cast<char>(t.stage_before));
  r.push_back(static_cast<char>(t.stage_after));
  r.push_back(t.via_validate ? 1 : 0);
  r.push_back(static_cast<char>(t.verdict));
  feed_freqs(r, t.out);
  return r;
}

// --------------------------------------------------------------------
// The checker's environment model.
// --------------------------------------------------------------------

/// Deterministic analytic projection with an AVX512 licence twist: a
/// heavy-vector signature scales with the licence-capped effective
/// frequency, so the capped P-states are genuinely distinct points of
/// the abstract state space.
class ShareModel final : public models::EnergyModel {
 public:
  ShareModel(simhw::PstateTable pstates, double compute_share,
             double dyn_share)
      : pstates_(std::move(pstates)), c_(compute_share), d_(dyn_share) {}

  [[nodiscard]] std::string name() const override { return "share"; }

  [[nodiscard]] models::Prediction predict(const Signature& sig,
                                           simhw::Pstate from,
                                           simhw::Pstate to) const override {
    const bool avx = sig.vpi > 0.2;
    const Freq ff = avx ? pstates_.avx512_effective(pstates_.freq(from))
                        : pstates_.freq(from);
    const Freq ft = avx ? pstates_.avx512_effective(pstates_.freq(to))
                        : pstates_.freq(to);
    const double f = ff.as_ghz();
    const double fp = ft.as_ghz();
    models::Prediction p;
    p.time_s = sig.iter_time_s * ((1.0 - c_) + c_ * f / fp);
    p.power_w = sig.dc_power_w * ((1.0 - d_) + d_ * fp / f);
    p.cpi = sig.cpi;
    return p;
  }

 private:
  simhw::PstateTable pstates_;
  double c_;
  double d_;
};

/// The shipped policy behind the checker interface; clone() copies the
/// whole policy object, giving BFS O(1) state snapshots.
class RealEufs final : public EufsInstance {
 public:
  explicit RealEufs(policies::PolicyContext ctx) : p_(std::move(ctx)) {}
  RealEufs(const RealEufs&) = default;

  PolicyState apply(const Signature& sig, NodeFreqs& out) override {
    return p_.apply(sig, out);
  }
  [[nodiscard]] bool validate(const Signature& sig) override {
    return p_.validate(sig);
  }
  [[nodiscard]] Stage stage() const override { return p_.stage(); }
  [[nodiscard]] simhw::Pstate current_pstate() const override {
    return p_.current_pstate();
  }
  [[nodiscard]] const policies::ImcSearch& imc_search() const override {
    return p_.imc_search();
  }
  [[nodiscard]] const Signature& stable_reference() const override {
    return p_.stable_reference();
  }
  [[nodiscard]] std::unique_ptr<EufsInstance> clone() const override {
    return std::make_unique<RealEufs>(*this);
  }

 private:
  policies::MinEnergyEufsPolicy p_;
};

/// Pre-call observables the property checks compare against.
struct PreState {
  Stage stage = Stage::kCpuFreqSel;
  bool search_started = false;
  Freq trial;
  Freq last_good;
  Signature ref;
};

PreState observe(const EufsInstance& p) {
  PreState s;
  s.stage = p.stage();
  const policies::ImcSearch& imc = p.imc_search();
  s.search_started = imc.started();
  s.trial = imc.current_trial();
  s.last_good = imc.last_good();
  s.ref = imc.reference();
  return s;
}

/// One EARL evaluation round against the policy: while STABLE the
/// library validates and only re-applies on a failed validation; in
/// every other stage the signature goes straight to apply().
TraceStep evaluate(EufsInstance& p, const Signature& sig, std::size_t input) {
  TraceStep t;
  t.input = input;
  t.stage_before = p.stage();
  if (t.stage_before == Stage::kStable && p.validate(sig)) {
    t.via_validate = true;
    t.verdict = PolicyState::kReady;
    t.stage_after = p.stage();
    return t;
  }
  t.verdict = p.apply(sig, t.out);
  t.stage_after = p.stage();
  return t;
}

struct PropertyFailure {
  std::string property;
  std::string detail;
};

std::string ghz_str(Freq f) { return f.str(); }

/// The paper's specification of one evaluation, checked against what the
/// policy actually did (P0 edges, P2 step discipline, P3 revert rule).
std::optional<PropertyFailure> check_transition(const PreState& pre,
                                                const Signature& sig,
                                                const TraceStep& t,
                                                const EufsInstance& post,
                                                const CheckerOptions& o) {
  if (t.via_validate) return std::nullopt;  // hold: no frequencies moved

  // P0: any net stage change must be a Fig. 2 edge.
  if (t.stage_after != t.stage_before &&
      !policies::MinEnergyEufsPolicy::legal_transition(t.stage_before,
                                                       t.stage_after)) {
    return PropertyFailure{"P0.legal-edge",
                           std::string("stage ") + stage_name(t.stage_before) +
                               " -> " + stage_name(t.stage_after) +
                               " is not in the Fig. 2 table"};
  }

  // Window well-formedness: on the grid, inside the range, min at floor.
  const Freq lo = o.uncore.min();
  const Freq hi = o.uncore.max();
  if (t.out.imc_max < lo || t.out.imc_max > hi ||
      (t.out.imc_max.as_khz() - lo.as_khz()) % o.uncore.step().as_khz() != 0) {
    return PropertyFailure{"P2.imc-step", "window maximum " +
                                              ghz_str(t.out.imc_max) +
                                              " off the uncore grid"};
  }
  if (t.out.imc_min != lo) {
    return PropertyFailure{
        "P2.imc-step", "window minimum moved to " + ghz_str(t.out.imc_min) +
                           "; min_energy policies must leave it at HW min"};
  }

  const bool to_search = t.stage_after == Stage::kImcFreqSel;
  const bool from_search = pre.stage == Stage::kImcFreqSel;

  // Restart edges (any stage -> CPU_FREQ_SEL) must reopen the window.
  if (t.stage_after == Stage::kCpuFreqSel) {
    if (t.out.imc_max != hi) {
      return PropertyFailure{"P2.imc-step",
                             "restart left the window at " +
                                 ghz_str(t.out.imc_max) +
                                 " instead of reopening it"};
    }
    if (from_search &&
        !metrics::signature_changed(pre.ref, sig, o.sig_change_th)) {
      return PropertyFailure{
          "P3.revert-iff",
          "restarted mid-search without a phase change (inputs within the "
          "signature-change threshold)"};
    }
    return std::nullopt;
  }

  // COMP_REF measures with the hardware in control: open window.
  if (t.stage_after == Stage::kCompRef) {
    if (t.out.imc_max != hi) {
      return PropertyFailure{"P2.imc-step",
                             "COMP_REF must leave the uncore window open, "
                             "got " +
                                 ghz_str(t.out.imc_max)};
    }
    return std::nullopt;
  }

  // Entering the search: the reference is the signature in hand and the
  // first trial starts from the HW-selected value (or the maximum, NG-U).
  if (to_search && !from_search) {
    std::string want_ref;
    std::string got_ref;
    feed_signature(want_ref, sig);
    feed_signature(got_ref, post.imc_search().reference());
    if (want_ref != got_ref) {
      return PropertyFailure{"P3.revert-iff",
                             "search reference is not the signature in hand"};
    }
    const Freq expect = o.hw_guided
                            ? o.uncore.step_down(o.uncore.clamp(sig.avg_imc_freq))
                            : hi;
    if (t.out.imc_max != expect || t.verdict != PolicyState::kContinue) {
      return PropertyFailure{
          "P2.imc-step", "search must start at " + ghz_str(expect) +
                             " (one step below the HW-selected clock), got " +
                             ghz_str(t.out.imc_max)};
    }
    return std::nullopt;
  }

  // Mid-search step: revert iff a guard tripped, else exactly one grid
  // step down (or settle at the floor).
  if (from_search) {
    if (metrics::signature_changed(pre.ref, sig, o.sig_change_th)) {
      // Handled by the restart branch above; reaching here means the
      // policy ignored a phase change.
      return PropertyFailure{"P3.revert-iff",
                             "phase change during the search was ignored"};
    }
    const bool guard =
        sig.cpi > pre.ref.cpi * (1.0 + o.unc_policy_th) ||
        sig.gbps < pre.ref.gbps * (1.0 - o.unc_policy_th);
    if (guard) {
      if (t.verdict != PolicyState::kReady ||
          t.stage_after != Stage::kStable) {
        return PropertyFailure{"P3.revert-iff",
                               "guard breached (CPI/GB-s beyond "
                               "unc_policy_th) but the search continued"};
      }
      if (t.out.imc_max != pre.last_good) {
        return PropertyFailure{
            "P3.revert-iff", "guard breach must revert to the last good "
                             "setting " +
                                 ghz_str(pre.last_good) + ", got " +
                                 ghz_str(t.out.imc_max)};
      }
    } else if (pre.trial > lo) {
      if (t.verdict != PolicyState::kContinue ||
          t.stage_after != Stage::kImcFreqSel) {
        return PropertyFailure{"P3.revert-iff",
                               "no guard breach but the search stopped "
                               "above the floor"};
      }
      if (t.out.imc_max != o.uncore.step_down(pre.trial)) {
        return PropertyFailure{
            "P2.imc-step", "expected a single 0.1 GHz step from " +
                               ghz_str(pre.trial) + ", got " +
                               ghz_str(t.out.imc_max)};
      }
    } else {
      if (t.verdict != PolicyState::kReady ||
          t.out.imc_max != pre.trial) {
        return PropertyFailure{"P2.imc-step",
                               "at the grid floor the search must settle "
                               "in place"};
      }
    }
    return std::nullopt;
  }

  return std::nullopt;
}

constexpr std::uint32_t kNoParent = 0xffffffffU;

struct Node {
  std::unique_ptr<EufsInstance> inst;
  NodeFreqs env;
  std::uint32_t parent = kNoParent;
  std::uint32_t depth = 0;
  TraceStep in_step;  // edge from parent (unused for the root)
};

/// Successor candidate produced by a worker; merged sequentially.
struct Succ {
  std::string key;
  TraceStep step;
  NodeFreqs env_after;
  std::unique_ptr<EufsInstance> inst;
  std::optional<PropertyFailure> failure;
};

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kCpuFreqSel:
      return "CPU_FREQ_SEL";
    case Stage::kCompRef:
      return "COMP_REF";
    case Stage::kImcFreqSel:
      return "IMC_FREQ_SEL";
    case Stage::kStable:
      return "READY";
  }
  return "?";
}

models::EnergyModelPtr make_share_model(simhw::PstateTable pstates,
                                        double compute_share,
                                        double dyn_share) {
  return std::make_shared<ShareModel>(std::move(pstates), compute_share,
                                      dyn_share);
}

std::unique_ptr<EufsInstance> make_real_eufs(policies::PolicyContext ctx) {
  return std::make_unique<RealEufs>(std::move(ctx));
}

ModelChecker::ModelChecker(InstanceFactory factory, SignatureLattice lattice,
                           CheckerOptions opts)
    : factory_(std::move(factory)),
      lattice_(std::move(lattice)),
      opts_(std::move(opts)) {
  EAR_CHECK_MSG(factory_ != nullptr, "model checker needs a policy factory");
  EAR_CHECK_MSG(lattice_.size() > 0, "empty signature lattice");
}

CheckReport ModelChecker::run() {
  CheckReport report;
  const std::size_t jobs = common::resolve_jobs(opts_.jobs);
  const std::size_t L = lattice_.size();

  std::vector<Node> nodes;
  std::map<std::string, std::uint32_t> index;
  // Adjacency (deduped successor ids) for the livelock check.
  std::vector<std::vector<std::uint32_t>> succs;

  const auto add_violation = [&](std::string property, std::string detail,
                                 std::vector<TraceStep> trace) {
    if (report.violations.size() >= opts_.max_violations) return;
    report.violations.push_back(
        {std::move(property), std::move(detail), std::move(trace)});
  };

  const auto path_to = [&](std::uint32_t id) {
    std::vector<TraceStep> path;
    for (std::uint32_t n = id; nodes[n].parent != kNoParent;
         n = nodes[n].parent) {
      path.push_back(nodes[n].in_step);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  /// Feed one lattice point to a policy snapshot, stamping the measured
  /// CPU clock from the applied P-state.
  const auto eval_input = [&](EufsInstance& inst, const NodeFreqs& env,
                              std::size_t input) {
    Signature sig = lattice_.at(input);
    sig.avg_cpu_freq = opts_.pstates.freq(env.cpu_pstate);
    const PreState pre = observe(inst);
    TraceStep t = evaluate(inst, sig, input);
    std::optional<PropertyFailure> failure =
        check_transition(pre, sig, t, inst, opts_);
    return std::pair<TraceStep, std::optional<PropertyFailure>>{
        t, std::move(failure)};
  };

  // Root: the policy before any signature, at its default selection.
  {
    Node root;
    root.inst = factory_();
    root.env = NodeFreqs{.cpu_pstate = opts_.pstates.nominal_pstate(),
                         .imc_max = opts_.uncore.max(),
                         .imc_min = opts_.uncore.min()};
    index.emplace(state_key(*root.inst, root.env), 0);
    nodes.push_back(std::move(root));
    succs.emplace_back();
  }

  std::uint64_t digest = 1469598103934665603ULL;
  bool exploded = false;

  // Level-synchronous BFS in fixed-size chunks: workers expand
  // (state, input) pairs independently; the merge walks results in
  // (state, input) order, so discovery order, node ids and the digest
  // are identical at any thread count.
  std::vector<std::uint32_t> frontier{0};
  constexpr std::size_t kChunk = 128;
  while (!frontier.empty() && !exploded) {
    std::vector<std::uint32_t> next;
    for (std::size_t base = 0; base < frontier.size() && !exploded;
         base += kChunk) {
      const std::size_t count = std::min(kChunk, frontier.size() - base);
      std::vector<std::vector<Succ>> results(count);
      common::parallel_for(
          count,
          [&](std::size_t i) {
            const Node& from = nodes[frontier[base + i]];
            std::vector<Succ>& out = results[i];
            out.reserve(L);
            for (std::size_t input = 0; input < L; ++input) {
              Succ s;
              s.inst = from.inst->clone();
              try {
                auto [step, failure] = eval_input(*s.inst, from.env, input);
                s.step = step;
                s.failure = std::move(failure);
              } catch (const common::ContractViolation& e) {
                s.step.input = input;
                s.step.stage_before = from.inst->stage();
                s.step.stage_after = from.inst->stage();
                s.failure = PropertyFailure{"P0.contract", e.what()};
                out.push_back(std::move(s));
                continue;
              }
              s.env_after = s.step.via_validate ? from.env : s.step.out;
              s.key = state_key(*s.inst, s.env_after);
              out.push_back(std::move(s));
            }
          },
          jobs);

      // Deterministic merge.
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t from_id = frontier[base + i];
        for (Succ& s : results[i]) {
          ++report.transitions;
          digest = fnv1a(s.key, digest);
          digest = fnv1a(step_record(s.step), digest);
          if (s.failure) {
            std::vector<TraceStep> trace = path_to(from_id);
            trace.push_back(s.step);
            add_violation(s.failure->property, s.failure->detail,
                          std::move(trace));
            continue;  // don't explore past a broken transition
          }
          auto [it, fresh] =
              index.emplace(s.key, static_cast<std::uint32_t>(nodes.size()));
          if (fresh) {
            Node n;
            n.inst = std::move(s.inst);
            n.env = s.env_after;
            n.parent = from_id;
            n.depth = nodes[from_id].depth + 1;
            n.in_step = s.step;
            report.max_depth = std::max<std::size_t>(report.max_depth, n.depth);
            nodes.push_back(std::move(n));
            succs.emplace_back();
            next.push_back(it->second);
            if (nodes.size() > opts_.max_states) {
              add_violation("state-explosion",
                            "exceeded max_states = " +
                                std::to_string(opts_.max_states) +
                                "; state identity is likely broken",
                            path_to(it->second));
              exploded = true;
              break;
            }
          }
          std::vector<std::uint32_t>& adj = succs[from_id];
          if (std::find(adj.begin(), adj.end(), it->second) == adj.end()) {
            adj.push_back(it->second);
          }
        }
        if (exploded) break;
      }
    }
    frontier = std::move(next);
  }

  report.states = nodes.size();
  report.digest = digest;

  // ------------------------------------------------------------------
  // P4: the graph minus restart edges and stable holds must be acyclic.
  // ------------------------------------------------------------------
  if (!exploded) {
    enum : unsigned char { kWhite, kGrey, kBlack };
    std::vector<unsigned char> colour(nodes.size(), kWhite);
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    for (std::uint32_t start = 0;
         start < nodes.size() && report.violations.size() < opts_.max_violations;
         ++start) {
      if (colour[start] != kWhite) continue;
      stack.emplace_back(start, 0);
      colour[start] = kGrey;
      while (!stack.empty()) {
        auto& [n, edge] = stack.back();
        if (edge < succs[n].size()) {
          const std::uint32_t m = succs[n][edge++];
          if (m == n) continue;  // stable hold
          if (nodes[m].inst->stage() == Stage::kCpuFreqSel) continue;  // restart
          if (colour[m] == kGrey) {
            add_violation(
                "P4.no-livelock",
                std::string("cycle through ") +
                    stage_name(nodes[m].inst->stage()) +
                    " without a restart: the policy can oscillate forever",
                path_to(m));
            continue;
          }
          if (colour[m] == kWhite) {
            colour[m] = kGrey;
            stack.emplace_back(m, 0);
          }
        } else {
          colour[n] = kBlack;
          stack.pop_back();
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // P1: from every reachable state, holding any signature constant must
  // reach READY (or a passing validation) within the bound.
  // ------------------------------------------------------------------
  if (!exploded) {
    const std::size_t bound =
        opts_.convergence_bound != 0
            ? opts_.convergence_bound
            : 2 * (opts_.pstates.size() + opts_.uncore.num_steps() + 8);
    std::vector<std::size_t> held;
    if (opts_.convergence_full) {
      held.resize(L);
      for (std::size_t i = 0; i < L; ++i) held[i] = i;
    } else {
      held = lattice_.convergence_subset();
    }
    struct ConvFailure {
      std::size_t input = 0;
      std::vector<TraceStep> tail;
    };
    std::vector<std::optional<ConvFailure>> failures(nodes.size());
    common::parallel_for(
        nodes.size(),
        [&](std::size_t id) {
          for (std::size_t input : held) {
            auto inst = nodes[id].inst->clone();
            NodeFreqs env = nodes[id].env;
            std::vector<TraceStep> tail;
            bool converged = false;
            for (std::size_t k = 0; k < bound; ++k) {
              Signature sig = lattice_.at(input);
              sig.avg_cpu_freq = opts_.pstates.freq(env.cpu_pstate);
              TraceStep t;
              try {
                t = evaluate(*inst, sig, input);
              } catch (const common::ContractViolation&) {
                break;  // reported by the exploration pass
              }
              tail.push_back(t);
              if (!t.via_validate) env = t.out;
              if (t.verdict == PolicyState::kReady) {
                converged = true;
                break;
              }
            }
            if (!converged) {
              failures[id] = ConvFailure{input, std::move(tail)};
              return;  // one counterexample per state is plenty
            }
          }
        },
        jobs);
    report.convergence_replays = nodes.size() * held.size();
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      if (!failures[id]) continue;
      std::vector<TraceStep> trace = path_to(static_cast<std::uint32_t>(id));
      trace.insert(trace.end(), failures[id]->tail.begin(),
                   failures[id]->tail.end());
      add_violation("P1.convergence",
                    "holding input #" + std::to_string(failures[id]->input) +
                        " (" + lattice_.describe(failures[id]->input) +
                        ") constant did not reach READY within " +
                        std::to_string(bound) + " evaluations",
                    std::move(trace));
    }
  }

  // ------------------------------------------------------------------
  // P5: replaying a trace twice is bitwise identical.
  // ------------------------------------------------------------------
  if (!exploded) {
    std::vector<std::uint32_t> samples;
    for (std::uint32_t id = 0;
         id < nodes.size() && samples.size() < opts_.determinism_samples; ++id) {
      samples.push_back(id);
    }
    std::uint32_t deepest = 0;
    for (std::uint32_t id = 0; id < nodes.size(); ++id) {
      if (nodes[id].depth > nodes[deepest].depth) deepest = id;
    }
    if (std::find(samples.begin(), samples.end(), deepest) == samples.end()) {
      samples.push_back(deepest);
    }
    const auto replay = [&](const std::vector<TraceStep>& path) {
      auto inst = factory_();
      NodeFreqs env = NodeFreqs{.cpu_pstate = opts_.pstates.nominal_pstate(),
                                .imc_max = opts_.uncore.max(),
                                .imc_min = opts_.uncore.min()};
      std::string record;
      for (const TraceStep& in : path) {
        Signature sig = lattice_.at(in.input);
        sig.avg_cpu_freq = opts_.pstates.freq(env.cpu_pstate);
        const TraceStep t = evaluate(*inst, sig, in.input);
        if (!t.via_validate) env = t.out;
        record += step_record(t);
      }
      return record;
    };
    for (std::uint32_t id : samples) {
      const std::vector<TraceStep> path = path_to(id);
      if (path.empty()) continue;
      ++report.determinism_replays;
      if (replay(path) != replay(path)) {
        add_violation("P5.determinism",
                      "two replays of the same input trace diverged", path);
      }
    }
  }

  return report;
}

std::string ModelChecker::render_trace(const Violation& v) const {
  common::AsciiTable table(v.property + ": " + v.detail);
  table.columns({"#", "input (lattice coordinates)", "edge", "verdict",
                 "cpu_pstate", "imc_max", "imc_min"},
                {common::Align::kRight, common::Align::kLeft,
                 common::Align::kLeft, common::Align::kLeft,
                 common::Align::kRight, common::Align::kRight,
                 common::Align::kRight});
  std::size_t i = 0;
  for (const TraceStep& t : v.trace) {
    const std::string edge = std::string(stage_name(t.stage_before)) +
                             (t.via_validate ? " (hold)" : " -> ") +
                             (t.via_validate ? "" : stage_name(t.stage_after));
    const std::string verdict = t.via_validate
                                    ? "validate: pass"
                                    : (t.verdict == PolicyState::kReady
                                           ? "READY"
                                           : "CONTINUE");
    if (t.via_validate) {
      table.add_row({std::to_string(++i), lattice_.describe(t.input), edge,
                     verdict, "-", "-", "-"});
    } else {
      table.add_row({std::to_string(++i), lattice_.describe(t.input), edge,
                     verdict, std::to_string(t.out.cpu_pstate),
                     t.out.imc_max.str(), t.out.imc_min.str()});
    }
  }
  return table.render();
}

}  // namespace ear::analysis
