#include "analysis/signature_lattice.hpp"

#include <cstdio>

#include "common/contracts.hpp"

namespace ear::analysis {

SignatureLattice::SignatureLattice(metrics::Signature base, LatticeAxes axes)
    : base_(base), axes_(std::move(axes)) {
  EAR_EXPECT_MSG(base_.valid, "lattice base must be a valid signature");
  EAR_EXPECT_MSG(!axes_.cpi_mults.empty() && !axes_.gbps_mults.empty() &&
                     !axes_.power_mults.empty() && !axes_.vpi_levels.empty() &&
                     !axes_.imc_observed.empty(),
                 "every lattice axis needs at least one level");
  size_ = axes_.cpi_mults.size() * axes_.gbps_mults.size() *
          axes_.power_mults.size() * axes_.vpi_levels.size() *
          axes_.imc_observed.size();
}

metrics::Signature SignatureLattice::default_base() {
  metrics::Signature s;
  s.valid = true;
  s.iter_time_s = 1.0;
  s.cpi = 0.5;
  s.tpi = 0.01;
  s.gbps = 50.0;
  s.dc_power_w = 320.0;
  s.avg_cpu_freq = common::Freq::ghz(2.40);
  s.avg_imc_freq = common::Freq::ghz(2.40);
  s.elapsed_s = 10.0;
  s.iterations = 10;
  return s;
}

SignatureLattice::Coords SignatureLattice::coords(std::size_t i) const {
  EAR_EXPECT_MSG(i < size_, "lattice index out of range");
  Coords c;
  c.cpi = i % axes_.cpi_mults.size();
  i /= axes_.cpi_mults.size();
  c.gbps = i % axes_.gbps_mults.size();
  i /= axes_.gbps_mults.size();
  c.power = i % axes_.power_mults.size();
  i /= axes_.power_mults.size();
  c.vpi = i % axes_.vpi_levels.size();
  i /= axes_.vpi_levels.size();
  c.imc = i;
  return c;
}

metrics::Signature SignatureLattice::at(std::size_t i) const {
  const Coords c = coords(i);
  metrics::Signature s = base_;
  s.cpi = base_.cpi * axes_.cpi_mults[c.cpi];
  s.gbps = base_.gbps * axes_.gbps_mults[c.gbps];
  s.dc_power_w = base_.dc_power_w * axes_.power_mults[c.power];
  s.vpi = axes_.vpi_levels[c.vpi];
  s.avg_imc_freq = axes_.imc_observed[c.imc];
  return s;
}

std::string SignatureLattice::describe(std::size_t i) const {
  const Coords c = coords(i);
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "cpi x%.2f, gbps x%.2f, pw x%.2f, vpi %.2f, imc %.2f GHz",
                axes_.cpi_mults[c.cpi], axes_.gbps_mults[c.gbps],
                axes_.power_mults[c.power], axes_.vpi_levels[c.vpi],
                axes_.imc_observed[c.imc].as_ghz());
  return buf;
}

std::vector<std::size_t> SignatureLattice::convergence_subset() const {
  // Neutral power/VPI plane: the first level of each collapsed axis.
  std::vector<std::size_t> subset;
  const std::size_t nc = axes_.cpi_mults.size();
  const std::size_t ng = axes_.gbps_mults.size();
  for (std::size_t imc = 0; imc < axes_.imc_observed.size(); ++imc) {
    for (std::size_t g = 0; g < ng; ++g) {
      for (std::size_t ci = 0; ci < nc; ++ci) {
        subset.push_back(ci + nc * (g + ng * (axes_.power_mults.size() *
                                              (axes_.vpi_levels.size() * imc))));
      }
    }
  }
  return subset;
}

}  // namespace ear::analysis
