// Experiment engine: run one application on a simulated cluster with EARL
// attached, and collect the metrics the paper's tables report.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "earl/library.hpp"
#include "eargm/eargm.hpp"
#include "faults/fault_plan.hpp"
#include "simhw/cluster.hpp"
#include "workload/phase.hpp"

namespace ear::sim {

/// Observation hook for one run: the engine reports node-0's phase
/// boundaries and per-iteration operating point / runtime state as they
/// happen. This is the record side of the service-layer record/replay
/// traces (service::TraceRecorder); the hook is null by default and the
/// engine takes the exact same path — observers read, never steer.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  struct IterationSample {
    std::size_t phase = 0;      // phase index within the app
    std::size_t iteration = 0;  // global iteration index
    double t_s = 0.0;           // node-0 simulated clock after the iteration
    common::Freq cpu_freq;
    common::Freq imc_freq;
    common::Power dc_power;
    /// EarlSession::State of node 0 shifted by one (1 = kNoLoop, ...);
    /// 0 = EARL not attached to this run.
    std::uint8_t earl_state = 0;
    /// Signatures node 0's session has computed so far (0 when detached).
    std::size_t signatures = 0;
  };

  virtual void phase_begin(std::size_t phase, std::size_t iterations) = 0;
  virtual void iteration(const IterationSample& sample) = 0;
};

struct ExperimentConfig {
  workload::AppModel app;
  earl::EarlSettings earl{};
  bool attach_earl = true;  // false = raw run without the runtime
  std::uint64_t seed = 1;
  simhw::NoiseModel noise{};
  /// Fixed operating point applied before the run (the paper's Fig. 1
  /// motivation sweeps): a CPU P-state and/or a pinned uncore window.
  /// Usually combined with attach_earl = false.
  std::optional<simhw::Pstate> fixed_cpu_pstate;
  std::optional<simhw::UncoreRatioLimit> fixed_uncore_window;
  /// Attach the EARGM cluster power manager with this configuration.
  std::optional<eargm::EargmConfig> eargm;
  /// Programme IA32_ENERGY_PERF_BIAS on every socket (0 = performance,
  /// 15 = powersave; >= 8 biases the HW UFS loop one bin lower).
  std::optional<std::uint64_t> energy_perf_bias;
  /// Arm a fault plan (chaos mode): a FaultInjector applies it through
  /// the simhw/eard hook points for the whole run. Null (the default)
  /// installs no hooks at all — results are bitwise identical to a build
  /// without the fault layer.
  std::shared_ptr<const faults::FaultPlan> fault_plan;
  /// Keep every `timeline_stride`-th node-0 timeline sample (0/1 = all).
  /// Campaign sweeps that only read the averaged scalars set this high to
  /// skip the per-iteration timeline work; scalar results are unaffected.
  std::size_t timeline_stride = 1;
  /// Per-run observation hook (record/replay traces). Not owned; must
  /// outlive the run. Null = no observation, bit-identical engine path.
  /// Unlike the timeline, observation is never strided: a replay trace
  /// is a full-fidelity decision stream.
  RunObserver* observer = nullptr;
};

/// One sample of node 0's operating point (per application iteration).
struct TimelinePoint {
  double t_s = 0.0;
  double cpu_ghz = 0.0;
  double imc_ghz = 0.0;
  double dc_power_w = 0.0;
};

/// Per-node outcome of one run.
struct NodeResult {
  double elapsed_s = 0.0;
  double energy_j = 0.0;       // DC node energy (exact INM ground truth)
  double pkg_energy_j = 0.0;   // RAPL PKG, wrap-corrected by polling
  double avg_dc_power_w = 0.0;
  double avg_pkg_power_w = 0.0;
  double avg_cpu_ghz = 0.0;
  double avg_imc_ghz = 0.0;
  double cpi = 0.0;
  double tpi = 0.0;
  double gbps = 0.0;
  double vpi = 0.0;
  std::size_t signatures = 0;
  std::uint64_t msr_writes = 0;
  /// Resilience accounting (all zero on fault-free runs).
  std::size_t rejected_windows = 0;
  std::size_t reanchors = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t reprobes = 0;
  bool degraded = false;  // session fell back to HW-UFS/CPU-only mid-run
};

/// Whole-job outcome.
struct RunResult {
  double total_time_s = 0.0;    // slowest node
  double total_energy_j = 0.0;  // sum over nodes
  double avg_dc_power_w = 0.0;  // per-node average
  double avg_pkg_power_w = 0.0;
  double avg_cpu_ghz = 0.0;
  double avg_imc_ghz = 0.0;
  double cpi = 0.0;
  double gbps = 0.0;  // per-node average
  std::vector<NodeResult> nodes;
  /// (time, uncore GHz) samples from node 0, for figure-style series.
  std::vector<std::pair<double, double>> imc_timeline;
  /// Full node-0 operating-point timeline (one sample per iteration).
  std::vector<TimelinePoint> timeline;
  /// EARGM statistics when a cluster budget was configured.
  std::size_t eargm_throttles = 0;
  simhw::Pstate eargm_final_limit = 0;
  /// Fault accounting: injected counts from the injector plus detected /
  /// recovered counts from the resilience layers. All zero when no plan
  /// was armed.
  faults::FaultReport fault_report;
  /// Chronological fault timeline (empty when no plan was armed).
  std::vector<faults::FaultEvent> fault_events;
};

/// Execute one run. The learned models for the app's node type are cached
/// process-wide (the learning phase runs once per architecture, as in the
/// real system).
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& cfg);

/// Access to the process-wide learned-model cache (benches reuse it).
[[nodiscard]] const models::LearnedModels& cached_models(
    const simhw::NodeConfig& cfg);

}  // namespace ear::sim
