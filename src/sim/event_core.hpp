// Event-driven sharded facility engine.
//
// Same contract as run_facility_reference — one FacilityConfig in, one
// FacilityResult out — but instead of stepping every node through every
// 10 ms governor period of every control round, the engine:
//
//   * integrates each node's energy/time analytically through
//     phase-stable stretches (simhw::SimNode::execute_stretch — memoised
//     iteration kernel + closed-form UFS governor integration);
//   * advances shard-local state (one shard per island, per-shard RNG
//     streams rooted at mix_seed(seed, island)) in parallel through
//     multi-round *windows* whenever no control-plane event (job
//     arrival, fault boundary, EARGM cap round, pending admission) can
//     fall inside the window;
//   * merges cross-shard effects serially in shard-index order at
//     barrier rounds, replaying readings, fault draws and job
//     completions round-by-round from per-round snapshots — the exact
//     order and arithmetic of the reference loop.
//
// Equivalence: bitwise-identical to the reference loop whenever the UFS
// dither gate is closed (cfg.ufs.dither_probability == 0 — neither
// engine draws governor randomness then); tolerance-bounded otherwise
// (the Bernoulli per-period dither average is replaced by its
// expectation; see docs/performance.md for the bound).
#pragma once

#include "sim/facility.hpp"

namespace ear::sim {

[[nodiscard]] FacilityResult run_facility_event(const FacilityConfig& cfg);

}  // namespace ear::sim
