// Campaign engine: fan a grid of experiment points — the paper's
// {workload x policy x frequency} sweeps — out across worker threads.
//
// Every table and figure in the paper is an average over repeated runs
// of many independent configurations; the grid is embarrassingly
// parallel. The engine schedules at (point, run) granularity so even a
// short list of points keeps all cores busy, and reduces each point's
// runs in run-index order with sim::reduce_runs — results are therefore
// bitwise identical for any job count, including the serial one.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "sim/runner.hpp"

namespace ear::sim {

/// One grid point: a config run `runs` times and averaged.
struct CampaignPoint {
  std::string label;
  ExperimentConfig cfg;
  std::size_t runs = 3;
};

struct CampaignOptions {
  /// Worker threads; 0 = EAR_SIM_JOBS env var or hardware concurrency.
  std::size_t jobs = 0;
  /// Print a per-point completion line (label + timing) to stderr.
  bool progress = false;
  /// Capture per-run exceptions instead of letting the first one abort
  /// the whole campaign (chaos mode: a crash is a finding, not a reason
  /// to lose every other point's results). Failed runs are excluded from
  /// the reduction; their messages land in CampaignResult::errors in
  /// run-index order.
  bool capture_errors = false;
  /// Downsample every run's node-0 timelines to one sample in
  /// `timeline_stride` (0/1 = keep all). Campaign reductions only read
  /// the averaged scalars, so results are unchanged; set it high for
  /// table sweeps where nobody plots the timelines.
  std::size_t timeline_stride = 1;
  /// Service hooks (see src/service/): all three default to null, in
  /// which case the engine behaves exactly as before.
  ///
  /// `observe` builds a per-(point, run) observer on the worker thread
  /// before the run starts; it is wired into that run's config and handed
  /// to on_slot_complete, then destroyed. Used for record/replay traces.
  std::function<std::unique_ptr<RunObserver>(std::size_t point,
                                             std::size_t run)>
      observe;
  /// Called after every *successful* (point, run) slot, serialised under
  /// an internal mutex, in completion order — which depends on the job
  /// count, so consumers must treat calls as an unordered set (write a
  /// keyed artifact, record a checkpoint slot), never fold them into an
  /// order-sensitive result. `obs` is this slot's observer (null unless
  /// `observe` is set). Runs that threw under capture_errors do not get
  /// a callback.
  std::function<void(std::size_t point, std::size_t run,
                     const RunResult& result, RunObserver* obs)>
      on_slot_complete;
  /// Polled before each queued task starts; once it returns true the
  /// campaign stops claiming tasks (in-flight runs finish and still get
  /// their completion callback) and run() reports interrupted(). The
  /// crash-safe service uses this for orderly drains; a SIGKILL needs no
  /// cooperation at all — that is what the checkpoints are for.
  std::function<bool()> should_stop;
};

/// Outcome of one point, in the order the points were added.
struct CampaignResult {
  std::string label;
  AveragedResult avg;
  /// Wall-clock the point's runs cost, summed over runs (thread-seconds).
  double run_seconds = 0.0;
  /// Messages of runs that threw (capture_errors mode), run-index order.
  std::vector<std::string> errors;
  /// Runs actually reduced into avg. Equals the point's configured runs
  /// on a full campaign; lower when the campaign was interrupted
  /// (should_stop) before every slot completed.
  std::size_t completed_runs = 0;
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions opts = {}) : opts_(opts) {}

  /// Append a point; returns its index into results().
  std::size_t add(CampaignPoint point);
  std::size_t add(std::string label, ExperimentConfig cfg,
                  std::size_t runs = 3);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<CampaignPoint>& points() const {
    return points_;
  }

  /// Pre-mark (point, run) as complete with `result` — restored from a
  /// service checkpoint. run() skips the slot and feeds `result` into the
  /// point's reduction exactly as if this process had computed it; the
  /// checkpoint stores results bit-exactly, so a resumed campaign reduces
  /// to bitwise-identical numbers. The point must already be add()ed.
  /// Preloads persist across run() calls.
  void preload(std::size_t point, std::size_t run, RunResult result);

  /// True when the last run() stopped early because should_stop fired;
  /// results() then holds partial reductions (see completed_runs).
  [[nodiscard]] bool interrupted() const { return interrupted_; }

  /// Execute every (point, run) task across the worker pool and reduce.
  /// Results are indexed exactly like the add() calls.
  const std::vector<CampaignResult>& run();

  /// Results of the last run() (empty before the first).
  [[nodiscard]] const std::vector<CampaignResult>& results() const {
    return results_;
  }

  /// Wall-clock of the last run() as observed by the caller.
  [[nodiscard]] double wall_seconds() const { return wall_s_; }

  /// Cross-point statistics over the per-point mean times of the last
  /// run(), merged per point with RunningStats::merge.
  [[nodiscard]] common::RunningStats time_stats() const;

 private:
  struct Preloaded {
    std::size_t point;
    std::size_t run;
    RunResult result;
  };

  CampaignOptions opts_;
  std::vector<CampaignPoint> points_;
  std::vector<Preloaded> preloaded_;
  // Filled by the serial run-index-order reduction after the pool
  // drains; never touched from the parallel phase.
  EAR_REDUCED_SERIAL std::vector<CampaignResult> results_;
  double wall_s_ = 0.0;
  bool interrupted_ = false;
};

/// Convenience: run a one-shot campaign over `points`.
[[nodiscard]] std::vector<CampaignResult> run_campaign(
    std::vector<CampaignPoint> points, CampaignOptions opts = {});

}  // namespace ear::sim
