#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "eard/accounting.hpp"
#include "faults/injector.hpp"

namespace ear::sim {

namespace {

/// Wrap-aware RAPL polling, as the node daemon does every few seconds:
/// single-wrap deltas per poll accumulate into a full-range total.
class RaplPoller {
 public:
  explicit RaplPoller(const simhw::SimNode& node) {
    for (std::size_t s = 0; s < node.config().sockets; ++s) {
      last_.push_back(node.rapl().pkg(s).raw());
    }
  }

  void poll(const simhw::SimNode& node) {
    for (std::size_t s = 0; s < last_.size(); ++s) {
      const std::uint32_t now = node.rapl().pkg(s).raw();
      total_j_ += simhw::RaplCounter::delta(last_[s], now).value;
      last_[s] = now;
    }
  }

  [[nodiscard]] double total_joules() const { return total_j_; }

 private:
  std::vector<std::uint32_t> last_;
  double total_j_ = 0.0;
};

}  // namespace

const models::LearnedModels& cached_models(const simhw::NodeConfig& cfg) {
  // The global mutex only guards the (cheap) cache lookup; the expensive
  // learn_models call runs under a per-entry once_flag, so two threads
  // first-touching *different* node configs learn concurrently instead of
  // convoying behind one lock. std::map keeps entry addresses stable
  // across inserts, which is what lets the flag/models live outside the
  // lock. Cold path only: one lookup per run_experiment.
  struct Entry {
    std::once_flag once;
    models::LearnedModels models;
  };
  static std::mutex mu;
  static std::map<std::string, Entry> cache;
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu);
    entry = &cache[cfg.name];
  }
  std::call_once(entry->once,
                 [&] { entry->models = models::learn_models(cfg); });
  return entry->models;
}

RunResult run_experiment(const ExperimentConfig& cfg) {
  const workload::AppModel& app = cfg.app;
  EAR_CHECK_MSG(!app.phases.empty(), "application has no phases");

  simhw::Cluster cluster(app.node_config, app.nodes, cfg.seed, cfg.noise);
  earl::EarLibrary library(app.node_config, cfg.earl,
                           cached_models(app.node_config));

  std::vector<eard::NodeDaemon> daemons;
  daemons.reserve(app.nodes);
  std::vector<std::unique_ptr<earl::EarlSession>> sessions;
  std::vector<RaplPoller> rapl;
  eard::Accounting accounting;
  std::vector<std::size_t> records;
  for (std::size_t n = 0; n < app.nodes; ++n) {
    daemons.emplace_back(cluster.node(n));
    rapl.emplace_back(cluster.node(n));
    records.push_back(accounting.job_started(cfg.seed, app.name,
                                             cfg.earl.policy, n,
                                             cluster.node(n)));
  }
  // Arm the fault plan before EARL attaches, so attach-time probes
  // already run through the hooks (a plan can make the very first
  // writability probe fail, as a boot-time lock would).
  std::unique_ptr<faults::FaultInjector> injector;
  if (cfg.fault_plan != nullptr && !cfg.fault_plan->empty()) {
    injector = std::make_unique<faults::FaultInjector>(
        *cfg.fault_plan, common::mix_seed(cfg.seed, 0xFA171EULL),
        app.nodes);
    for (std::size_t n = 0; n < app.nodes; ++n) {
      injector->attach(n, cluster.node(n), daemons[n]);
    }
  }
  if (cfg.attach_earl) {
    for (auto& d : daemons) sessions.push_back(library.attach(d, app.is_mpi));
  }
  // Fixed operating points (motivation-style sweeps) are applied after
  // EARL's defaults so they win; they pin the node for the whole run.
  for (std::size_t n = 0; n < app.nodes; ++n) {
    if (cfg.fixed_cpu_pstate) {
      cluster.node(n).set_cpu_pstate(*cfg.fixed_cpu_pstate);
    }
    if (cfg.fixed_uncore_window) {
      cluster.node(n).set_uncore_limit_all(*cfg.fixed_uncore_window);
    }
    if (cfg.energy_perf_bias) {
      for (std::size_t s = 0; s < app.node_config.sockets; ++s) {
        cluster.node(n).msr(s).write(simhw::kMsrEnergyPerfBias,
                                     *cfg.energy_perf_bias);
      }
    }
  }

  std::unique_ptr<eargm::EargmManager> manager;
  if (cfg.eargm) {
    std::vector<eard::NodeDaemon*> ptrs;
    for (auto& d : daemons) ptrs.push_back(&d);
    manager = std::make_unique<eargm::EargmManager>(*cfg.eargm,
                                                    std::move(ptrs));
  }
  std::vector<double> round_power(app.nodes, 0.0);

  RunResult out;
  // The iteration count is known upfront; size the node-0 timelines once
  // instead of growing them geometrically through the run.
  const std::size_t stride = std::max<std::size_t>(1, cfg.timeline_stride);
  const std::size_t samples =
      (app.total_iterations() + stride - 1) / stride;
  out.imc_timeline.reserve(samples);
  out.timeline.reserve(samples);
  out.nodes.reserve(app.nodes);
  std::size_t iter_index = 0;
  std::size_t phase_index = 0;
  for (const auto& phase : app.phases) {
    if (cfg.observer != nullptr) {
      cfg.observer->phase_begin(phase_index, phase.iterations);
    }
    // Imbalance-scaled per-node demands, computed once per phase.
    std::vector<simhw::WorkDemand> demands;
    demands.reserve(app.nodes);
    for (std::size_t n = 0; n < app.nodes; ++n) {
      demands.push_back(app.node_demand(phase, n));
    }
    for (std::size_t it = 0; it < phase.iterations; ++it) {
      for (std::size_t n = 0; n < app.nodes; ++n) {
        if (injector) injector->poll(n);  // scheduled locks fire here
        const auto outcome = cluster.node(n).execute_iteration(demands[n]);
        rapl[n].poll(cluster.node(n));
        round_power[n] = outcome.power.total().value;
        if (injector && injector->power_reading_dropped(n)) {
          // The node's report never reaches EARGM this round.
          round_power[n] = std::numeric_limits<double>::quiet_NaN();
        }
        if (n == 0 && iter_index % stride == 0) {
          out.imc_timeline.emplace_back(cluster.node(0).clock().value,
                                        outcome.uncore_freq.as_ghz());
          out.timeline.push_back(TimelinePoint{
              .t_s = cluster.node(0).clock().value,
              .cpu_ghz = cluster.node(0).cpu_freq().as_ghz(),
              .imc_ghz = outcome.uncore_freq.as_ghz(),
              .dc_power_w = outcome.power.total().value,
          });
        }
        if (cfg.attach_earl) {
          if (app.is_mpi) {
            sessions[n]->on_mpi_calls(phase.mpi_pattern);
          } else {
            sessions[n]->on_time_tick();
          }
        }
        // Observe node 0 after its session processed the iteration, so
        // the sample carries the decision state *this* iteration ended
        // in — that is the stream a replay must reproduce exactly.
        if (n == 0 && cfg.observer != nullptr) {
          RunObserver::IterationSample sample{
              .phase = phase_index,
              .iteration = iter_index,
              .t_s = cluster.node(0).clock().value,
              .cpu_freq = cluster.node(0).cpu_freq(),
              .imc_freq = outcome.uncore_freq,
              .dc_power = outcome.power.total()};
          if (cfg.attach_earl) {
            sample.earl_state =
                static_cast<std::uint8_t>(sessions[0]->state()) + 1;
            sample.signatures = sessions[0]->signatures_computed();
          }
          cfg.observer->iteration(sample);
        }
      }
      if (manager) manager->update(round_power);
      ++iter_index;
    }
    ++phase_index;
  }
  if (manager) {
    out.eargm_throttles = manager->throttle_events();
    out.eargm_final_limit = manager->current_limit();
    out.fault_report.missed_readings = manager->missed_readings();
  }
  if (injector) {
    const faults::FaultReport& injected = injector->stats();
    out.fault_report.msr_drops = injected.msr_drops;
    out.fault_report.msr_locks = injected.msr_locks;
    out.fault_report.snapshot_faults = injected.snapshot_faults;
    out.fault_report.dropped_readings = injected.dropped_readings;
    out.fault_events = injector->events();
  }

  // Aggregate.
  for (std::size_t n = 0; n < app.nodes; ++n) {
    const simhw::SimNode& node = cluster.node(n);
    accounting.job_ended(records[n], node);
    const simhw::PmuCounters& c = node.counters();
    NodeResult r;
    r.elapsed_s = node.clock().value;
    r.energy_j = node.inm().exact().value;
    r.pkg_energy_j = rapl[n].total_joules();
    r.avg_dc_power_w = r.elapsed_s > 0.0 ? r.energy_j / r.elapsed_s : 0.0;
    r.avg_pkg_power_w =
        r.elapsed_s > 0.0 ? r.pkg_energy_j / r.elapsed_s : 0.0;
    if (c.elapsed_seconds > 0.0) {
      r.avg_cpu_ghz = c.avg_cpu_freq().as_ghz();
      r.avg_imc_ghz = c.avg_imc_freq().as_ghz();
      r.gbps = c.cas_transactions * 64.0 / c.elapsed_seconds / 1e9;
    }
    if (c.instructions > 0.0) {
      r.cpi = c.cycles / c.instructions;
      r.tpi = c.cas_transactions / c.instructions;
      r.vpi = c.avx512_ops / c.instructions;
    }
    if (cfg.attach_earl) {
      r.signatures = sessions[n]->signatures_computed();
      r.rejected_windows = sessions[n]->windows_rejected();
      r.reanchors = sessions[n]->reanchors();
      r.degraded = sessions[n]->degraded();
    }
    r.msr_writes = daemons[n].msr_writes();
    r.verify_failures = daemons[n].verify_failures();
    r.reprobes = daemons[n].reprobes();
    out.fault_report.rejected_windows += r.rejected_windows;
    out.fault_report.reanchors += r.reanchors;
    out.fault_report.verify_failures += r.verify_failures;
    out.fault_report.reprobes += r.reprobes;
    out.fault_report.fallbacks += r.degraded ? 1 : 0;
    // Settle-or-degrade: under an armed plan a session must either keep
    // producing signatures or have cleanly fallen back; one that went
    // silent without degrading is an invariant violation upstream.
    if (injector && cfg.attach_earl && r.signatures == 0 && !r.degraded) {
      ++out.fault_report.unsettled_nodes;
    }
    out.nodes.push_back(r);

    out.total_time_s = std::max(out.total_time_s, r.elapsed_s);
    out.total_energy_j += r.energy_j;
    out.avg_dc_power_w += r.avg_dc_power_w;
    out.avg_pkg_power_w += r.avg_pkg_power_w;
    out.avg_cpu_ghz += r.avg_cpu_ghz;
    out.avg_imc_ghz += r.avg_imc_ghz;
    out.cpi += r.cpi;
    out.gbps += r.gbps;
  }
  const double nn = static_cast<double>(app.nodes);
  out.avg_dc_power_w /= nn;
  out.avg_pkg_power_w /= nn;
  out.avg_cpu_ghz /= nn;
  out.avg_imc_ghz /= nn;
  out.cpi /= nn;
  out.gbps /= nn;
  return out;
}

}  // namespace ear::sim
