#include "sim/job_queue.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/error.hpp"

namespace ear::sim {

using common::ConfigError;

FreeSet::FreeSet(std::size_t size) : size_(size), count_(size) {
  words_.assign((size + 63) / 64, ~std::uint64_t{0});
  // Mask the tail word so count() and the bit scan agree on the island
  // boundary.
  const std::size_t tail = size % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() = (std::uint64_t{1} << tail) - 1;
  }
}

void FreeSet::take(std::size_t k, std::vector<std::size_t>& out) {
  EAR_CHECK_MSG(k <= count_, "take() asked for more nodes than are free");
  count_ -= k;
  std::size_t w = cursor_;
  while (k > 0) {
    EAR_CHECK(w < words_.size());
    std::uint64_t bits = words_[w];
    while (bits != 0 && k > 0) {
      const int b = std::countr_zero(bits);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      bits &= bits - 1;  // clear the lowest set bit
      --k;
    }
    words_[w] = bits;
    if (k > 0) ++w;
  }
  // Every word below w drained on the way here, so the cursor can only
  // move forward; put() pulls it back when a lower node frees up.
  cursor_ = w;
}

void FreeSet::put(const std::vector<std::size_t>& nodes) {
  for (std::size_t n : nodes) {
    EAR_CHECK_MSG(n < size_, "released node index past the island size");
    const std::size_t w = n / 64;
    const std::uint64_t bit = std::uint64_t{1} << (n % 64);
    EAR_CHECK_MSG((words_[w] & bit) == 0, "node released twice");
    words_[w] |= bit;
    cursor_ = std::min(cursor_, w);
  }
  count_ += nodes.size();
}

JobQueue::JobQueue(std::vector<FacilityJob> jobs,
                   std::vector<std::size_t> island_sizes, bool backfill)
    : jobs_(std::move(jobs)), backfill_(backfill) {
  EAR_CHECK_MSG(!jobs_.empty(), "job queue needs at least one job");
  EAR_CHECK_MSG(!island_sizes.empty(), "job queue needs at least one island");

  std::size_t widest_island = 0;
  for (std::size_t size : island_sizes) {
    EAR_CHECK_MSG(size > 0, "island has no nodes");
    widest_island = std::max(widest_island, size);
    free_.emplace_back(size);
  }
  for (const FacilityJob& j : jobs_) {
    if (j.nodes == 0) {
      throw ConfigError("job '" + j.name + "' requests zero nodes");
    }
    if (j.nodes > widest_island) {
      throw ConfigError("job '" + j.name + "' wants " +
                        std::to_string(j.nodes) +
                        " nodes but the widest island has " +
                        std::to_string(widest_island));
    }
  }

  // Arrival order: submit time, then submission index — the index pins
  // the tie-break so identical submit times dispatch identically
  // everywhere (same lesson as the campaign LPT sort).
  arrival_order_.resize(jobs_.size());
  std::iota(arrival_order_.begin(), arrival_order_.end(), std::size_t{0});
  std::sort(arrival_order_.begin(), arrival_order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (jobs_[a].submit_s != jobs_[b].submit_s) {
                return jobs_[a].submit_s < jobs_[b].submit_s;
              }
              return a < b;
            });
}

std::size_t JobQueue::free_nodes(std::size_t island) const {
  EAR_CHECK_MSG(island < free_.size(), "island index out of range");
  return free_[island].count();
}

std::vector<JobStart> JobQueue::admit(double now_s) {
  while (next_arrival_ < arrival_order_.size() &&
         jobs_[arrival_order_[next_arrival_]].submit_s <= now_s) {
    pending_.push_back(arrival_order_[next_arrival_]);
    ++next_arrival_;
  }
  peak_pending_ = std::max(peak_pending_, pending_.size());

  std::vector<JobStart> starts;
  std::vector<std::size_t> still_waiting;
  bool head_blocked = false;
  for (std::size_t qpos = 0; qpos < pending_.size(); ++qpos) {
    const std::size_t j = pending_[qpos];
    if (head_blocked && !backfill_) {
      still_waiting.push_back(j);
      continue;
    }
    // First island (in index order) with enough free nodes wins; the
    // allocation takes its lowest-numbered free nodes.
    std::size_t island = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].count() >= jobs_[j].nodes) {
        island = i;
        break;
      }
    }
    if (island == free_.size()) {
      head_blocked = true;
      still_waiting.push_back(j);
      continue;
    }
    if (head_blocked) ++backfills_;
    JobStart start{.job = j, .island = island, .local_nodes = {}};
    start.local_nodes.reserve(jobs_[j].nodes);
    free_[island].take(jobs_[j].nodes, start.local_nodes);
    starts.push_back(std::move(start));
    ++started_;
  }
  pending_ = std::move(still_waiting);
  return starts;
}

void JobQueue::release(std::size_t island,
                       const std::vector<std::size_t>& nodes) {
  EAR_CHECK_MSG(island < free_.size(), "island index out of range");
  free_[island].put(nodes);
}

}  // namespace ear::sim
