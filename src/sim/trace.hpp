// Trace export: persist an experiment's operating-point timeline and
// per-node summary as CSV, for external plotting of figure-style series.
#pragma once

#include <ostream>

#include "sim/experiment.hpp"

namespace ear::sim {

/// Node-0 timeline: t_s, cpu_ghz, imc_ghz, dc_power_w per iteration.
void write_timeline_csv(const RunResult& result, std::ostream& out);

/// Per-node summary: one row per node with the NodeResult metrics.
void write_nodes_csv(const RunResult& result, std::ostream& out);

}  // namespace ear::sim
