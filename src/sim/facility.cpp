#include "sim/facility.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "eard/eard.hpp"
#include "sim/event_core.hpp"
#include "sim/report.hpp"
#include "sim/shard.hpp"
#include "simhw/cluster.hpp"

namespace ear::sim {

using common::ConfigError;

namespace {

// NodeSlot / kNoJob moved to sim/shard.hpp (shared with the event core).

/// Per-running-job bookkeeping.
struct ActiveJob {
  std::size_t job = 0;
  std::size_t island = 0;
  std::vector<std::size_t> global_nodes;  // facility-wide indices
  std::vector<std::size_t> local_nodes;   // island-local (for release)
  double start_inm_j = 0.0;
};

}  // namespace

double FacilityResult::mean_wait_s() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.nodes == 0) continue;  // never started
    acc += j.wait_s();
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

double FacilityResult::mean_turnaround_s() const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.nodes == 0 || j.end_s <= 0.0) continue;  // unfinished
    acc += j.turnaround_s();
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

SimCore parse_sim_core(const std::string& name) {
  if (name == "reference") return SimCore::kReference;
  if (name == "event") return SimCore::kEvent;
  throw ConfigError("unknown sim core '" + name +
                    "' (expected reference|event)");
}

const char* sim_core_name(SimCore core) {
  return core == SimCore::kEvent ? "event" : "reference";
}

FacilityResult run_facility(const FacilityConfig& cfg) {
  return cfg.core == SimCore::kEvent ? run_facility_event(cfg)
                                     : run_facility_reference(cfg);
}

FacilityResult run_facility_reference(const FacilityConfig& cfg) {
  EAR_CHECK_MSG(!cfg.islands.empty(), "facility needs at least one island");
  EAR_CHECK_MSG(cfg.round_s > 0.0, "control round must be positive");
  EAR_CHECK_MSG(cfg.max_sim_s > cfg.round_s, "max_sim_s too small");
  const auto wall_t0 = std::chrono::steady_clock::now();

  // Hardware: one homogeneous cluster per island, nodes seeded from the
  // facility seed so every (island, node) stream is independent of the
  // worker-thread count.
  std::vector<std::unique_ptr<simhw::Cluster>> clusters;
  std::vector<std::size_t> island_sizes;
  std::vector<std::size_t> offsets;  // island -> first global node index
  std::size_t total_nodes = 0;
  for (std::size_t i = 0; i < cfg.islands.size(); ++i) {
    EAR_CHECK_MSG(cfg.islands[i].nodes > 0, "island has no nodes");
    offsets.push_back(total_nodes);
    island_sizes.push_back(cfg.islands[i].nodes);
    total_nodes += cfg.islands[i].nodes;
    clusters.push_back(std::make_unique<simhw::Cluster>(
        cfg.islands[i].node_config, cfg.islands[i].nodes,
        common::mix_seed(cfg.seed, i), cfg.noise, cfg.ufs));
  }

  std::vector<eard::NodeDaemon> daemons;
  daemons.reserve(total_nodes);
  std::vector<simhw::SimNode*> nodes;
  nodes.reserve(total_nodes);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    for (std::size_t n = 0; n < island_sizes[i]; ++n) {
      nodes.push_back(&clusters[i]->node(n));
      daemons.emplace_back(clusters[i]->node(n));
    }
  }

  // Federation (only when capped). The caps act straight through the
  // node daemons — EARL sessions are not attached at facility scale;
  // per-node policy behaviour is the experiment tier's subject.
  std::unique_ptr<eargm::FederatedEargm> federation;
  if (cfg.budget.value > 0.0) {
    std::vector<std::vector<eard::NodeDaemon*>> groups;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      std::vector<eard::NodeDaemon*> group;
      for (std::size_t n = 0; n < island_sizes[i]; ++n) {
        group.push_back(&daemons[offsets[i] + n]);
      }
      groups.push_back(std::move(group));
    }
    federation = std::make_unique<eargm::FederatedEargm>(
        eargm::FederationConfig{.facility_budget = cfg.budget,
                                .island = cfg.island_eargm,
                                .floor_share = cfg.floor_share},
        std::move(groups));
  }

  const auto wall_t1 = std::chrono::steady_clock::now();

  JobQueue queue(cfg.jobs, island_sizes, cfg.backfill);

  FacilityResult out;
  out.budget_w = cfg.budget.value;
  out.jobs.resize(queue.jobs().size());
  for (std::size_t j = 0; j < queue.jobs().size(); ++j) {
    out.jobs[j].name = queue.jobs()[j].name;
    out.jobs[j].submit_s = queue.jobs()[j].submit_s;
  }

  // Per-node state: each parallel task owns exactly its slots[g]; the
  // power readings are merged from the slots *serially* (node order) so
  // total_w is the same float-addition order every run.
  EAR_SHARD_LOCAL std::vector<NodeSlot> slots(total_nodes);
  EAR_REDUCED_SERIAL std::vector<double> readings(total_nodes, 0.0);
  std::vector<ActiveJob> active;
  common::Rng fault_rng(common::mix_seed(cfg.seed, 0xFAC111));

  // When do the scheduled dropouts end? Persistent overruns only count
  // against the cap once the faults have cleared and the grace window
  // has passed (settle-or-degrade).
  double last_fault_end_s = 0.0;
  for (const auto& f : cfg.fault_plan.specs) {
    if (f.family == faults::FaultFamily::kNodeDropout ||
        f.family == faults::FaultFamily::kIslandDropout) {
      last_fault_end_s =
          std::max(last_fault_end_s, std::min(f.end_s, cfg.max_sim_s));
    }
  }

  bool nonfinite = false;
  bool wedged = false;
  std::size_t persistent_overruns = 0;
  std::size_t consecutive_over = 0;
  const double slack_w = cfg.budget.value * cfg.cap_slack_pct / 100.0;

  for (std::size_t round = 0;; ++round) {
    const double now = static_cast<double>(round) * cfg.round_s;
    const double round_end = now + cfg.round_s;
    if (round_end > cfg.max_sim_s) {
      wedged = !active.empty() || !queue.all_started();
      break;
    }

    // Admission: arrivals up to `now`, lowest free nodes, backfill.
    for (JobStart& start : queue.admit(now)) {
      const FacilityJob& job = queue.jobs()[start.job];
      const simhw::NodeConfig& node_cfg =
          cfg.islands[start.island].node_config;
      workload::SyntheticSpec spec = job.work;
      spec.active_cores =
          std::min(spec.active_cores, node_cfg.total_cores());
      const simhw::WorkDemand demand = workload::make_demand(node_cfg, spec);

      ActiveJob aj{.job = start.job,
                   .island = start.island,
                   .global_nodes = {},
                   .local_nodes = std::move(start.local_nodes),
                   .start_inm_j = 0.0};
      for (std::size_t local : aj.local_nodes) {
        const std::size_t g = offsets[start.island] + local;
        aj.global_nodes.push_back(g);
        slots[g].job = start.job;
        slots[g].demand = demand;
        slots[g].iters_left = spec.iterations;
        aj.start_inm_j += nodes[g]->inm().exact().value;
      }
      FacilityJobOutcome& o = out.jobs[start.job];
      o.island = start.island;
      o.nodes = aj.global_nodes.size();
      o.start_s = now;
      active.push_back(std::move(aj));
    }

    // Advance every node to the round boundary. Nodes are fully
    // independent here (own RNG, own counters), so the fan-out cannot
    // perturb results whatever the thread count.
    common::parallel_for(
        total_nodes,
        [&](std::size_t g) {
          simhw::SimNode& node = *nodes[g];
          NodeSlot& slot = slots[g];
          if (slot.job != kNoJob) {
            while (slot.iters_left > 0 && node.clock().value < round_end) {
              (void)node.execute_iteration(slot.demand);
              --slot.iters_left;
            }
          }
          // Allocated-but-done nodes idle alongside the free ones until
          // the boundary (the allocation is held until the job ends).
          const double gap = round_end - node.clock().value;
          if (gap > 0.0) node.idle(common::Secs{gap});
        },
        cfg.sim_jobs, /*grain=*/16);

    // Ground-truth readings from the INM energy deltas, node order.
    double total_w = 0.0;
    for (std::size_t g = 0; g < total_nodes; ++g) {
      NodeSlot& slot = slots[g];
      const double e = nodes[g]->inm().exact().value;
      const double t = nodes[g]->clock().value;
      const double de = e - slot.prev_inm_j;
      const double dt = t - slot.prev_clock_s;
      if (dt > 0.0) slot.last_reading = common::Power{de / dt};
      slot.prev_inm_j = e;
      slot.prev_clock_s = t;
      readings[g] = slot.last_reading.value;
      total_w += readings[g];
    }
    if (!std::isfinite(total_w)) nonfinite = true;
    out.peak_power_w = std::max(out.peak_power_w, total_w);

    // Cap accounting against the ground truth (what the room's meters
    // would see), not the post-dropout readings the managers see.
    if (cfg.budget.value > 0.0) {
      const double overrun = total_w - cfg.budget.value;
      if (overrun > 0.0) {
        ++out.cap_overrun_rounds;
        out.worst_overrun_w = std::max(out.worst_overrun_w, overrun);
      }
      bool degraded = true;
      if (federation) {
        for (std::size_t i = 0; i < federation->islands(); ++i) {
          if (federation->island(i).current_limit() <
              cfg.island_eargm.deepest_limit) {
            degraded = false;
            break;
          }
        }
      }
      if (now >= last_fault_end_s && overrun > slack_w && !degraded) {
        if (++consecutive_over > cfg.overrun_grace) ++persistent_overruns;
      } else {
        consecutive_over = 0;
      }
    }

    // Fault tier: hide readings from the managers. Serial draws in
    // (spec, island/node) order — one per target per active round —
    // keep the stream independent of the worker-thread count.
    for (const auto& f : cfg.fault_plan.specs) {
      if (!f.active_at(now)) continue;
      if (f.family == faults::FaultFamily::kNodeDropout) {
        for (std::size_t g = 0; g < total_nodes; ++g) {
          if (!f.applies_to_node(g)) continue;
          if (fault_rng.uniform() < f.probability) {
            if (std::isfinite(readings[g])) ++out.faults.dropped_readings;
            readings[g] = std::numeric_limits<double>::quiet_NaN();
          }
        }
      } else if (f.family == faults::FaultFamily::kIslandDropout) {
        for (std::size_t i = 0; i < clusters.size(); ++i) {
          if (!f.applies_to_island(i)) continue;
          if (fault_rng.uniform() < f.probability) {
            ++out.faults.island_dropouts;
            for (std::size_t n = 0; n < island_sizes[i]; ++n) {
              readings[offsets[i] + n] =
                  std::numeric_limits<double>::quiet_NaN();
            }
          }
        }
      }
    }

    if (federation) federation->update(readings);

    // Completion sweep in job-admission order; a finished job frees its
    // allocation for next round's admission.
    std::vector<ActiveJob> still_running;
    for (ActiveJob& aj : active) {
      bool done = true;
      for (std::size_t g : aj.global_nodes) {
        if (slots[g].iters_left > 0) {
          done = false;
          break;
        }
      }
      if (!done) {
        still_running.push_back(std::move(aj));
        continue;
      }
      double end_inm = 0.0;
      for (std::size_t g : aj.global_nodes) {
        end_inm += nodes[g]->inm().exact().value;
        slots[g].job = kNoJob;
      }
      FacilityJobOutcome& o = out.jobs[aj.job];
      o.end_s = round_end;
      o.energy_j = end_inm - aj.start_inm_j;
      if (!std::isfinite(o.energy_j)) nonfinite = true;
      out.makespan_s = std::max(out.makespan_s, o.end_s);
      queue.release(aj.island, aj.local_nodes);
    }
    active = std::move(still_running);
    out.rounds = round + 1;

    if (active.empty() && queue.all_started()) break;
  }

  for (std::size_t i = 0; i < clusters.size(); ++i) {
    FacilityIslandOutcome io;
    io.node_type = cfg.islands[i].node_config.name;
    io.nodes = island_sizes[i];
    for (std::size_t n = 0; n < island_sizes[i]; ++n) {
      io.energy_j += clusters[i]->node(n).inm().exact().value;
    }
    if (!std::isfinite(io.energy_j)) nonfinite = true;
    if (federation) {
      const eargm::EargmManager& m = federation->island(i);
      io.final_budget_w = federation->island_budget(i).value;
      io.final_limit = m.current_limit();
      io.throttles = m.throttle_events();
      io.releases = m.release_events();
      io.blind_rounds = m.blind_rounds();
      io.missed_readings = m.missed_readings();
      io.resumed_nodes = m.resumed_nodes();
    }
    out.facility_energy_j += io.energy_j;
    out.islands.push_back(std::move(io));
  }
  if (federation) {
    out.redistributions = federation->redistributions();
    out.facility_blind_rounds = federation->facility_blind_rounds();
    out.faults.missed_readings = federation->total_missed_readings();
  }
  out.backfills = queue.backfills();
  out.peak_pending_jobs = queue.peak_pending();

  // Chaos invariants (see header). Violations are reported, not thrown:
  // a chaos campaign wants the full picture, not the first failure.
  if (nonfinite) {
    out.violations.push_back("non-finite energy/power in ground truth");
  }
  if (wedged) {
    out.violations.push_back("facility wedged: max_sim_s reached with " +
                             std::to_string(active.size()) +
                             " jobs running");
  }
  if (persistent_overruns > 0) {
    out.violations.push_back(
        "cap overrun beyond " +
        common::AsciiTable::num(cfg.cap_slack_pct, 0) +
        "% slack persisted past the grace window in " +
        std::to_string(persistent_overruns) + " rounds");
  }
  out.walls.build_s =
      std::chrono::duration<double>(wall_t1 - wall_t0).count();
  out.walls.core_s = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - wall_t1).count();
  return out;
}

FacilityConfig make_facility_config(std::size_t nodes, std::size_t islands,
                                    std::size_t job_count,
                                    std::uint64_t seed) {
  EAR_CHECK_MSG(nodes > 0 && islands > 0 && job_count > 0,
                "facility synthesis needs nodes, islands and jobs");
  if (islands > nodes) {
    throw ConfigError("more islands than nodes");
  }

  FacilityConfig cfg;
  cfg.seed = seed;
  // Cycle the three calibrated node types across the islands; remainder
  // nodes land on the first islands so sizes differ by at most one.
  const simhw::NodeConfig types[] = {simhw::make_skylake_6148_node(),
                                     simhw::make_icelake_8358_node(),
                                     simhw::make_skylake_6142m_gpu_node()};
  const std::size_t base = nodes / islands;
  std::size_t extra = nodes % islands;
  std::size_t min_island = base;
  for (std::size_t i = 0; i < islands; ++i) {
    const std::size_t size = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    cfg.islands.push_back(FacilityIsland{.node_config = types[i % 3],
                                         .nodes = size});
    min_island = std::min(min_island, size);
  }

  // Catalog-flavoured job classes: compute-bound (dgemm-like),
  // bandwidth-bound (stream-like), balanced MPI (bqcd-like) and a
  // latency/spin-heavy class — the mix the paper's Table II spans.
  struct JobClass {
    const char* name;
    workload::SyntheticSpec spec;
  };
  const JobClass classes[] = {
      {"dgemm", {.iter_seconds = 0.25, .cpi_core = 0.4, .gbps = 18.0,
                 .stall_share = 0.05, .uncore_share = 0.4, .vpi = 0.35,
                 .power_activity = 1.1, .iterations = 24}},
      {"stream", {.iter_seconds = 0.2, .cpi_core = 1.1, .gbps = 120.0,
                  .stall_share = 0.55, .uncore_share = 0.7,
                  .iterations = 20}},
      {"bqcd", {.iter_seconds = 0.3, .cpi_core = 0.7, .gbps = 60.0,
                .stall_share = 0.3, .uncore_share = 0.55,
                .comm_fraction = 0.15, .iterations = 18}},
      {"latbench", {.iter_seconds = 0.15, .cpi_core = 1.6, .gbps = 8.0,
                    .stall_share = 0.4, .uncore_share = 0.8,
                    .comm_fraction = 0.3, .iterations = 30}},
  };

  // Mixed widths capped so every job fits the *smallest* island — the
  // queue only requires the widest, but keeping jobs placeable anywhere
  // exercises demand-driven redistribution rather than forced packing.
  std::vector<std::size_t> widths;
  for (std::size_t w : {std::size_t{1}, std::size_t{1}, std::size_t{2},
                        std::size_t{2}, std::size_t{4}, std::size_t{8},
                        std::size_t{16}}) {
    if (w <= min_island) widths.push_back(w);
  }

  // Jittered arrival stream spanning ~2 minutes of simulated time
  // regardless of the job count, so bigger facilities see a denser
  // stream (demand spikes) rather than a longer tail.
  const double mean_gap = 120.0 / static_cast<double>(job_count);
  common::Rng rng(common::mix_seed(seed, 0x10B5));
  double t = 0.0;
  for (std::size_t j = 0; j < job_count; ++j) {
    const JobClass& jc = classes[rng.below(4)];
    FacilityJob job;
    job.name = std::string(jc.name) + "-" + std::to_string(j);
    job.nodes = widths[rng.below(widths.size())];
    job.submit_s = t;
    job.work = jc.spec;
    job.work.iterations += rng.below(16);  // spread the drain
    t += rng.uniform(0.0, 2.0 * mean_gap);
    cfg.jobs.push_back(std::move(job));
  }

  // A deliberately tight default cap (~250 W/node vs ~300-450 W busy)
  // so enforcement is actually exercised; callers override the budget for
  // uncapped runs.
  cfg.budget = common::Power{static_cast<double>(nodes) * 250.0};
  return cfg;
}

void print_facility_report(const FacilityResult& r) {
  common::AsciiTable summary("facility");
  summary.columns({"metric", "value"});
  std::size_t nodes = 0;
  for (const auto& i : r.islands) nodes += i.nodes;
  summary.add_row({"nodes", std::to_string(nodes)});
  summary.add_row({"islands", std::to_string(r.islands.size())});
  summary.add_row({"jobs", std::to_string(r.jobs.size())});
  summary.add_row({"rounds", std::to_string(r.rounds)});
  summary.add_row({"makespan (s)", common::AsciiTable::num(r.makespan_s, 1)});
  summary.add_row(
      {"energy (MJ)", common::AsciiTable::num(r.facility_energy_j / 1e6, 3)});
  summary.add_row({"peak power (kW)",
                   common::AsciiTable::num(r.peak_power_w / 1e3, 2)});
  summary.add_row({"budget (kW)",
                   common::AsciiTable::num(r.budget_w / 1e3, 2)});
  // Ratio columns route through safe_ratio: an uncapped facility has no
  // defined peak/budget ratio and renders n/a, never inf.
  summary.add_row({"peak/budget",
                   common::AsciiTable::num(
                       safe_ratio(r.peak_power_w, r.budget_w), 2)});
  summary.add_row({"cap overrun rounds",
                   std::to_string(r.cap_overrun_rounds)});
  summary.add_row({"worst overrun (kW)",
                   common::AsciiTable::num(r.worst_overrun_w / 1e3, 2)});
  summary.add_row({"redistributions", std::to_string(r.redistributions)});
  summary.add_row({"facility blind rounds",
                   std::to_string(r.facility_blind_rounds)});
  summary.add_row({"mean wait (s)",
                   common::AsciiTable::num(r.mean_wait_s(), 1)});
  summary.add_row({"mean turnaround (s)",
                   common::AsciiTable::num(r.mean_turnaround_s(), 1)});
  summary.add_row({"backfills", std::to_string(r.backfills)});
  summary.add_row({"peak queued jobs",
                   std::to_string(r.peak_pending_jobs)});
  summary.add_row({"dropped readings",
                   std::to_string(r.faults.dropped_readings)});
  summary.add_row({"island dropouts",
                   std::to_string(r.faults.island_dropouts)});
  summary.add_row({"missed (substituted)",
                   std::to_string(r.faults.missed_readings)});
  summary.print();

  common::AsciiTable islands("islands");
  islands.columns({"island", "type", "nodes", "energy (MJ)", "budget (kW)",
                   "share", "limit", "throttles", "releases", "blind",
                   "missed", "resumed"});
  for (std::size_t i = 0; i < r.islands.size(); ++i) {
    const FacilityIslandOutcome& io = r.islands[i];
    islands.add_row(
        {std::to_string(i), io.node_type, std::to_string(io.nodes),
         common::AsciiTable::num(io.energy_j / 1e6, 3),
         common::AsciiTable::num(io.final_budget_w / 1e3, 2),
         common::AsciiTable::num(safe_ratio(io.final_budget_w, r.budget_w),
                                 2),
         "p" + std::to_string(io.final_limit),
         std::to_string(io.throttles), std::to_string(io.releases),
         std::to_string(io.blind_rounds), std::to_string(io.missed_readings),
         std::to_string(io.resumed_nodes)});
  }
  islands.print();

  for (const std::string& v : r.violations) {
    EAR_LOG_WARN("facility", "invariant violated: %s", v.c_str());
  }
}

}  // namespace ear::sim
