#include "sim/report.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace ear::sim {

std::string vs_paper(double measured, double paper, int precision) {
  char buf[96];
  if (!std::isfinite(measured)) {
    std::snprintf(buf, sizeof buf, "n/a (paper %.*f)", precision, paper);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%.*f (paper %.*f)", precision, measured,
                precision, paper);
  return buf;
}

std::string vs_paper_pct(double measured_pct, double paper_pct,
                         int precision) {
  char buf[96];
  // percent_change signals an undefined (zero-reference) comparison with
  // NaN; render it as n/a instead of a fake number.
  if (!std::isfinite(measured_pct)) {
    std::snprintf(buf, sizeof buf, "n/a (paper %+.*f%%)", precision,
                  paper_pct);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%+.*f%% (paper %+.*f%%)", precision,
                measured_pct, precision, paper_pct);
  return buf;
}

double safe_ratio(double numerator, double denominator) {
  if (!std::isfinite(numerator) || !std::isfinite(denominator) ||
      denominator == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return numerator / denominator;
}

void print_series(const std::string& title, const std::string& x_label,
                  const std::vector<Series>& series) {
  EAR_CHECK_MSG(!series.empty(), "no series to print");
  common::AsciiTable table(title);
  std::vector<std::string> header{x_label};
  for (const auto& s : series) header.push_back(s.name);
  table.columns(header);
  const std::size_t n = series.front().x.size();
  for (const auto& s : series) {
    EAR_CHECK_MSG(s.x.size() == n && s.y.size() == n,
                  "series length mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row{common::AsciiTable::num(series[0].x[i], 2)};
    for (const auto& s : series) {
      row.push_back(common::AsciiTable::num(s.y[i], 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
}

void add_comparison_row(common::AsciiTable& table, const std::string& label,
                        const Comparison& c) {
  table.add_row({label, common::AsciiTable::pct(c.time_penalty_pct),
                 common::AsciiTable::pct(c.power_saving_pct),
                 common::AsciiTable::pct(c.energy_saving_pct),
                 common::AsciiTable::pct(c.gbps_penalty_pct),
                 common::AsciiTable::num(c.efficiency_ratio(), 2)});
}

}  // namespace ear::sim
