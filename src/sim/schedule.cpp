#include "sim/schedule.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "earl/library.hpp"
#include "sim/experiment.hpp"
#include "simhw/cluster.hpp"

namespace ear::sim {

using common::ConfigError;

namespace {

/// Per-job execution state.
struct JobState {
  const JobSpec* spec = nullptr;
  std::size_t record_base = 0;  // first accounting record index
  std::size_t phase = 0;
  std::size_t iteration = 0;
  bool started = false;
  bool finished = false;
  std::vector<std::unique_ptr<earl::EarlSession>> sessions;
  std::vector<simhw::WorkDemand> demands;  // imbalance-scaled, per node
  std::vector<simhw::PmuCounters> start_counters;  // job-window baselines

  [[nodiscard]] bool done() const { return finished; }
};

}  // namespace

ScheduleResult run_schedule(const ScheduleConfig& cfg) {
  EAR_CHECK_MSG(cfg.cluster_nodes > 0, "cluster needs nodes");
  EAR_CHECK_MSG(!cfg.jobs.empty(), "schedule needs jobs");

  // Validate allocations: inside the cluster and pairwise disjoint.
  std::vector<int> owner(cfg.cluster_nodes, -1);
  for (std::size_t j = 0; j < cfg.jobs.size(); ++j) {
    const JobSpec& job = cfg.jobs[j];
    if (job.first_node + job.app.nodes > cfg.cluster_nodes) {
      throw ConfigError("job '" + job.app.name +
                        "' allocated outside the cluster");
    }
    for (std::size_t n = job.first_node;
         n < job.first_node + job.app.nodes; ++n) {
      if (owner[n] != -1) {
        throw ConfigError("overlapping allocations on node " +
                          std::to_string(n));
      }
      owner[n] = static_cast<int>(j);
    }
  }

  simhw::Cluster cluster(cfg.node_config, cfg.cluster_nodes, cfg.seed,
                         cfg.noise);
  std::vector<eard::NodeDaemon> daemons;
  daemons.reserve(cfg.cluster_nodes);
  for (std::size_t n = 0; n < cfg.cluster_nodes; ++n) {
    daemons.emplace_back(cluster.node(n));
  }

  std::unique_ptr<eargm::EargmManager> manager;
  if (cfg.eargm) {
    std::vector<eard::NodeDaemon*> ptrs;
    for (auto& d : daemons) ptrs.push_back(&d);
    manager =
        std::make_unique<eargm::EargmManager>(*cfg.eargm, std::move(ptrs));
  }

  ScheduleResult out;
  // Last-known per-node power (EARGM input); idle nodes updated lazily.
  std::vector<double> node_power(cfg.cluster_nodes, 0.0);

  std::vector<JobState> jobs(cfg.jobs.size());
  std::vector<JobOutcome> outcomes(cfg.jobs.size());
  for (std::size_t j = 0; j < cfg.jobs.size(); ++j) {
    jobs[j].spec = &cfg.jobs[j];
    outcomes[j].app_name = cfg.jobs[j].app.name;
    outcomes[j].policy = cfg.jobs[j].earl.policy;
  }

  auto job_clock = [&](const JobState& js) {
    // A job's clock is its slowest allocated node.
    double t = 0.0;
    for (std::size_t n = js.spec->first_node;
         n < js.spec->first_node + js.spec->app.nodes; ++n) {
      t = std::max(t, cluster.node(n).clock().value);
    }
    return t;
  };

  auto start_job = [&](std::size_t j) {
    JobState& js = jobs[j];
    const JobSpec& spec = *js.spec;
    // Idle the allocation up to the submission time.
    for (std::size_t n = spec.first_node;
         n < spec.first_node + spec.app.nodes; ++n) {
      const double gap = spec.start_time_s - cluster.node(n).clock().value;
      if (gap > 0.0) cluster.node(n).idle(common::Secs{gap});
    }
    earl::EarLibrary lib(cfg.node_config, spec.earl,
                         cached_models(cfg.node_config));
    for (std::size_t n = spec.first_node;
         n < spec.first_node + spec.app.nodes; ++n) {
      js.sessions.push_back(lib.attach(daemons[n], spec.app.is_mpi));
      js.start_counters.push_back(cluster.node(n).counters());
      out.accounting.job_started(j + 1, spec.app.name, spec.earl.policy,
                                 n, cluster.node(n));
    }
    js.record_base = out.accounting.records().size() - spec.app.nodes;
    outcomes[j].start_s = job_clock(js);
    js.started = true;
  };

  auto finish_job = [&](std::size_t j) {
    JobState& js = jobs[j];
    const JobSpec& spec = *js.spec;
    for (std::size_t k = 0; k < spec.app.nodes; ++k) {
      const std::size_t n = spec.first_node + k;
      out.accounting.job_ended(js.record_base + k, cluster.node(n));
      node_power[n] = 0.0;  // allocation released
    }
    outcomes[j].end_s = job_clock(js);
    double cpu = 0.0, imc = 0.0;
    for (std::size_t k = 0; k < spec.app.nodes; ++k) {
      // Averages over the job window only (the allocation may have idled
      // before submission).
      const simhw::PmuCounters d =
          cluster.node(spec.first_node + k).counters() -
          js.start_counters[k];
      if (d.elapsed_seconds > 0.0) {
        cpu += d.avg_cpu_freq().as_ghz();
        imc += d.avg_imc_freq().as_ghz();
      }
    }
    outcomes[j].avg_cpu_ghz = cpu / static_cast<double>(spec.app.nodes);
    outcomes[j].avg_imc_ghz = imc / static_cast<double>(spec.app.nodes);
    js.finished = true;
  };

  // Interleaved execution: always advance the unfinished job whose clock
  // is smallest, so cross-job ordering approximates global time and the
  // EARGM sees a coherent cluster state.
  for (;;) {
    std::size_t next = jobs.size();
    double best = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (jobs[j].done()) continue;
      const double t = jobs[j].started
                           ? job_clock(jobs[j])
                           : jobs[j].spec->start_time_s;
      if (t < best) {
        best = t;
        next = j;
      }
    }
    if (next == jobs.size()) break;  // all finished

    JobState& js = jobs[next];
    const JobSpec& spec = *js.spec;
    if (!js.started) start_job(next);

    const workload::Phase& phase = spec.app.phases[js.phase];
    if (js.demands.empty()) {
      for (std::size_t k = 0; k < spec.app.nodes; ++k) {
        js.demands.push_back(spec.app.node_demand(phase, k));
      }
    }
    for (std::size_t k = 0; k < spec.app.nodes; ++k) {
      const std::size_t n = spec.first_node + k;
      const auto outcome =
          cluster.node(n).execute_iteration(js.demands[k]);
      node_power[n] = outcome.power.total().value;
      if (spec.app.is_mpi) {
        js.sessions[k]->on_mpi_calls(phase.mpi_pattern);
      } else {
        js.sessions[k]->on_time_tick();
      }
    }
    if (++js.iteration >= phase.iterations) {
      js.iteration = 0;
      js.demands.clear();
      if (++js.phase >= spec.app.phases.size()) finish_job(next);
    }

    // EARGM round: last-known powers; unallocated/idle nodes at a probed
    // idle wattage.
    if (manager) {
      double aggregate = 0.0;
      std::vector<double> readings(cfg.cluster_nodes, 0.0);
      for (std::size_t n = 0; n < cfg.cluster_nodes; ++n) {
        readings[n] = node_power[n] > 0.0 ? node_power[n] : 85.0;
        aggregate += readings[n];
      }
      out.peak_aggregate_w = std::max(out.peak_aggregate_w, aggregate);
      manager->update(readings);
    } else {
      double aggregate = 0.0;
      for (std::size_t n = 0; n < cfg.cluster_nodes; ++n) {
        aggregate += node_power[n] > 0.0 ? node_power[n] : 85.0;
      }
      out.peak_aggregate_w = std::max(out.peak_aggregate_w, aggregate);
    }
  }

  // Trail idle nodes to the makespan so cluster energy covers the whole
  // horizon.
  for (const auto& o : outcomes) {
    out.makespan_s = std::max(out.makespan_s, o.end_s);
  }
  for (std::size_t n = 0; n < cfg.cluster_nodes; ++n) {
    const double gap = out.makespan_s - cluster.node(n).clock().value;
    if (gap > 0.0) cluster.node(n).idle(common::Secs{gap});
    out.cluster_energy_j += cluster.node(n).inm().exact().value;
  }
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    outcomes[j].energy_j = out.accounting.job_energy_j(j + 1);
  }
  out.jobs = std::move(outcomes);
  if (manager) out.eargm_throttles = manager->throttle_events();
  return out;
}

}  // namespace ear::sim
