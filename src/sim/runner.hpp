// Runner: repeated runs with independent seeds, averaged — the paper runs
// everything three times and reports means — plus the penalty/saving
// comparisons all the tables and figures are built from.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "sim/experiment.hpp"

namespace ear::sim {

/// Mean metrics over repeated runs.
struct AveragedResult {
  double total_time_s = 0.0;
  double total_energy_j = 0.0;
  double avg_dc_power_w = 0.0;
  double avg_pkg_power_w = 0.0;
  double avg_cpu_ghz = 0.0;
  double avg_imc_ghz = 0.0;
  double cpi = 0.0;
  double gbps = 0.0;
  double time_stddev_s = 0.0;
  std::size_t runs = 0;
  /// Fault counters summed (not averaged) over the runs; all zero when
  /// no plan was armed.
  faults::FaultReport faults;
};

/// The config for run index `run` of a repeated experiment: the per-run
/// seed is derived with common::mix_seed so distinct (user seed, run)
/// pairs never share a random stream.
[[nodiscard]] ExperimentConfig config_for_run(const ExperimentConfig& cfg,
                                              std::size_t run);

/// Reduce per-run results (in run-index order) to the paper-style mean.
/// Shared by run_averaged and the parallel Campaign engine, so both
/// produce bitwise-identical numbers for the same runs.
[[nodiscard]] AveragedResult reduce_runs(std::span<const RunResult> runs);

/// Execute `runs` independent runs (mixed per-run seeds) and average.
/// `jobs` > 1 fans the runs out over threads (0 = all cores /
/// EAR_SIM_JOBS); the reduction is always in run-index order, so the
/// result does not depend on the job count.
[[nodiscard]] AveragedResult run_averaged(const ExperimentConfig& cfg,
                                          std::size_t runs = 3,
                                          std::size_t jobs = 1);

/// Penalties/savings of `result` relative to `reference` (positive saving
/// = better than reference; positive penalty = worse), as the paper's
/// figures report them.
struct Comparison {
  double time_penalty_pct = 0.0;
  double power_saving_pct = 0.0;       // DC node power
  double energy_saving_pct = 0.0;      // DC node energy
  double pck_power_saving_pct = 0.0;   // RAPL PKG power (Table VII)
  double gbps_penalty_pct = 0.0;
  /// Energy saved per time lost; the paper's "efficiency ratio".
  /// A zero or undefined time penalty has no defined ratio: that is NaN
  /// (the zero-reference convention percent_change uses), which the
  /// table layer renders as "n/a" — not 0.0, which would print a fake
  /// "worthless trade" figure for a comparison that never happened.
  [[nodiscard]] double efficiency_ratio() const {
    return std::isfinite(time_penalty_pct) && time_penalty_pct != 0.0
               ? energy_saving_pct / time_penalty_pct
               : std::numeric_limits<double>::quiet_NaN();
  }
  /// Energy-delay-product change in percent (negative = EDP improved):
  /// a threshold-free figure of merit for energy/performance trades.
  double edp_change_pct = 0.0;
  /// Energy-delay-squared change in percent (performance-leaning merit).
  double ed2p_change_pct = 0.0;
};
[[nodiscard]] Comparison compare(const AveragedResult& reference,
                                 const AveragedResult& result);

}  // namespace ear::sim
