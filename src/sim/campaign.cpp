#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ear::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::size_t Campaign::add(CampaignPoint point) {
  EAR_CHECK_MSG(point.runs > 0, "campaign point needs at least one run");
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::size_t Campaign::add(std::string label, ExperimentConfig cfg,
                          std::size_t runs) {
  return add(CampaignPoint{.label = std::move(label),
                           .cfg = std::move(cfg),
                           .runs = runs});
}

const std::vector<CampaignResult>& Campaign::run() {
  // Flatten the grid to (point, run) tasks so a campaign with few points
  // but several runs each still fills the pool.
  struct Task {
    std::size_t point;
    std::size_t run;
  };
  std::vector<Task> tasks;
  // Each worker writes exactly its own (point, run) slot; anything
  // cross-slot (run_seconds) goes under `mu`.
  EAR_SHARD_LOCAL std::vector<std::vector<RunResult>> slots(points_.size());
  EAR_SHARD_LOCAL std::vector<std::vector<std::string>> error_slots(
      points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    slots[p].resize(points_[p].runs);
    error_slots[p].resize(points_[p].runs);
    for (std::size_t r = 0; r < points_[p].runs; ++r) {
      tasks.push_back(Task{.point = p, .run = r});
    }
  }
  // Cost-aware dispatch: issue the most expensive runs first so a long
  // point claimed late cannot straggle past the pool's drain (classic
  // LPT makespan argument). Each task still writes its own (point, run)
  // slot and the reduction below walks run-index order, so results are
  // bitwise independent of the execution order. Equal-cost tasks keep
  // their (point, run) flattening order — pinned explicitly rather than
  // left to the sort's whims so an all-equal-cost campaign dispatches
  // identically everywhere.
  const auto cost = [this](const Task& t) {
    const workload::AppModel& app = points_[t.point].cfg.app;
    return app.total_iterations() * app.nodes;
  };
  std::sort(tasks.begin(), tasks.end(),
            [&](const Task& a, const Task& b) {
              const std::size_t ca = cost(a);
              const std::size_t cb = cost(b);
              if (ca != cb) return ca > cb;
              if (a.point != b.point) return a.point < b.point;
              return a.run < b.run;
            });

  EAR_GUARDED_BY(mu) std::vector<double> run_seconds(points_.size(), 0.0);
  std::vector<std::atomic<std::size_t>> remaining(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    remaining[p].store(points_[p].runs, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> points_done{0};
  std::mutex mu;  // guards run_seconds accumulation + progress output

  const auto t0 = Clock::now();
  common::parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const Task& t = tasks[i];
        const CampaignPoint& point = points_[t.point];
        const auto start = Clock::now();
        ExperimentConfig run_cfg = config_for_run(point.cfg, t.run);
        if (opts_.timeline_stride > 1) {
          run_cfg.timeline_stride = opts_.timeline_stride;
        }
        if (opts_.capture_errors) {
          try {
            slots[t.point][t.run] = run_experiment(run_cfg);
          } catch (const std::exception& e) {
            const char* what = e.what();
            error_slots[t.point][t.run] =
                (what != nullptr && what[0] != '\0') ? what
                                                     : "unknown error";
          }
        } else {
          slots[t.point][t.run] = run_experiment(run_cfg);
        }
        const double elapsed = seconds_since(start);
        {
          std::lock_guard<std::mutex> lock(mu);
          run_seconds[t.point] += elapsed;
        }
        if (remaining[t.point].fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          const std::size_t done =
              points_done.fetch_add(1, std::memory_order_relaxed) + 1;
          if (opts_.progress) {
            std::lock_guard<std::mutex> lock(mu);
            std::fprintf(stderr,
                         "[campaign %zu/%zu] %s: %zu runs, %.2fs\n", done,
                         points_.size(), point.label.c_str(), point.runs,
                         run_seconds[t.point]);
          }
        }
      },
      opts_.jobs);

  results_.clear();
  results_.reserve(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    // Failed runs (capture_errors mode) are excluded from the reduction
    // in run-index order, so the surviving average is still bitwise
    // independent of the job count.
    std::vector<RunResult> ok;
    std::vector<std::string> errors;
    ok.reserve(slots[p].size());
    for (std::size_t r = 0; r < slots[p].size(); ++r) {
      if (error_slots[p][r].empty()) {
        ok.push_back(std::move(slots[p][r]));
      } else {
        errors.push_back(std::move(error_slots[p][r]));
      }
    }
    results_.push_back(CampaignResult{
        .label = points_[p].label,
        .avg = ok.empty() ? AveragedResult{} : reduce_runs(ok),
        .run_seconds = run_seconds[p],
        .errors = std::move(errors)});
  }
  wall_s_ = seconds_since(t0);
  return results_;
}

common::RunningStats Campaign::time_stats() const {
  common::RunningStats stats;
  for (const CampaignResult& r : results_) {
    common::RunningStats one;
    one.add(r.avg.total_time_s);
    stats.merge(one);
  }
  return stats;
}

std::vector<CampaignResult> run_campaign(std::vector<CampaignPoint> points,
                                         CampaignOptions opts) {
  Campaign campaign(opts);
  for (auto& p : points) campaign.add(std::move(p));
  campaign.run();
  return campaign.results();
}

}  // namespace ear::sim
