#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ear::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::size_t Campaign::add(CampaignPoint point) {
  EAR_CHECK_MSG(point.runs > 0, "campaign point needs at least one run");
  points_.push_back(std::move(point));
  return points_.size() - 1;
}

std::size_t Campaign::add(std::string label, ExperimentConfig cfg,
                          std::size_t runs) {
  return add(CampaignPoint{.label = std::move(label),
                           .cfg = std::move(cfg),
                           .runs = runs});
}

void Campaign::preload(std::size_t point, std::size_t run, RunResult result) {
  EAR_CHECK_MSG(point < points_.size(), "preload: no such campaign point");
  EAR_CHECK_MSG(run < points_[point].runs, "preload: run out of range");
  for (const Preloaded& pre : preloaded_) {
    EAR_CHECK_MSG(pre.point != point || pre.run != run,
                  "preload: slot already preloaded");
  }
  preloaded_.push_back(
      Preloaded{.point = point, .run = run, .result = std::move(result)});
}

const std::vector<CampaignResult>& Campaign::run() {
  // Flatten the grid to (point, run) tasks so a campaign with few points
  // but several runs each still fills the pool.
  struct Task {
    std::size_t point;
    std::size_t run;
  };
  std::vector<Task> tasks;
  // Each worker writes exactly its own (point, run) slot; anything
  // cross-slot (run_seconds) goes under `mu`.
  EAR_SHARD_LOCAL std::vector<std::vector<RunResult>> slots(points_.size());
  EAR_SHARD_LOCAL std::vector<std::vector<std::string>> error_slots(
      points_.size());
  // 1 = the slot's result is valid (preloaded or computed this run()).
  // Workers only ever touch their own (point, run) element.
  EAR_SHARD_LOCAL std::vector<std::vector<char>> done(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    slots[p].resize(points_[p].runs);
    error_slots[p].resize(points_[p].runs);
    done[p].resize(points_[p].runs, 0);
  }
  // Checkpoint-restored slots skip execution entirely; their results
  // enter the run-index-order reduction exactly like freshly computed
  // ones, which is what makes resume bitwise-identical.
  for (const Preloaded& pre : preloaded_) {
    slots[pre.point][pre.run] = pre.result;
    done[pre.point][pre.run] = 1;
  }
  for (std::size_t p = 0; p < points_.size(); ++p) {
    for (std::size_t r = 0; r < points_[p].runs; ++r) {
      if (done[p][r] == 0) tasks.push_back(Task{.point = p, .run = r});
    }
  }
  interrupted_ = false;
  // Cost-aware dispatch: issue the most expensive runs first so a long
  // point claimed late cannot straggle past the pool's drain (classic
  // LPT makespan argument). Each task still writes its own (point, run)
  // slot and the reduction below walks run-index order, so results are
  // bitwise independent of the execution order. Equal-cost tasks keep
  // their (point, run) flattening order — pinned explicitly rather than
  // left to the sort's whims so an all-equal-cost campaign dispatches
  // identically everywhere.
  const auto cost = [this](const Task& t) {
    const workload::AppModel& app = points_[t.point].cfg.app;
    return app.total_iterations() * app.nodes;
  };
  std::sort(tasks.begin(), tasks.end(),
            [&](const Task& a, const Task& b) {
              const std::size_t ca = cost(a);
              const std::size_t cb = cost(b);
              if (ca != cb) return ca > cb;
              if (a.point != b.point) return a.point < b.point;
              return a.run < b.run;
            });

  EAR_GUARDED_BY(mu) std::vector<double> run_seconds(points_.size(), 0.0);
  std::vector<std::atomic<std::size_t>> remaining(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    remaining[p].store(points_[p].runs, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> points_done{0};
  std::atomic<bool> stop{false};
  std::mutex mu;  // guards run_seconds + progress + on_slot_complete

  const auto t0 = Clock::now();
  common::parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        // An orderly drain: once should_stop fires, queued tasks become
        // no-ops (their slots simply stay incomplete); runs already in
        // flight finish normally. The stop flag latches the answer so
        // the predicate is polled at most once per queued task.
        if (stop.load(std::memory_order_relaxed)) return;
        if (opts_.should_stop && opts_.should_stop()) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        const Task& t = tasks[i];
        const CampaignPoint& point = points_[t.point];
        const auto start = Clock::now();
        ExperimentConfig run_cfg = config_for_run(point.cfg, t.run);
        if (opts_.timeline_stride > 1) {
          run_cfg.timeline_stride = opts_.timeline_stride;
        }
        std::unique_ptr<RunObserver> obs;
        if (opts_.observe) {
          obs = opts_.observe(t.point, t.run);
          run_cfg.observer = obs.get();
        }
        bool ok = true;
        if (opts_.capture_errors) {
          try {
            slots[t.point][t.run] = run_experiment(run_cfg);
          } catch (const std::exception& e) {
            ok = false;
            const char* what = e.what();
            error_slots[t.point][t.run] =
                (what != nullptr && what[0] != '\0') ? what
                                                     : "unknown error";
          }
        } else {
          slots[t.point][t.run] = run_experiment(run_cfg);
        }
        if (ok) done[t.point][t.run] = 1;
        const double elapsed = seconds_since(start);
        {
          std::lock_guard<std::mutex> lock(mu);
          run_seconds[t.point] += elapsed;
          if (ok && opts_.on_slot_complete) {
            opts_.on_slot_complete(t.point, t.run, slots[t.point][t.run],
                                   obs.get());
          }
        }
        if (remaining[t.point].fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          const std::size_t finished =
              points_done.fetch_add(1, std::memory_order_relaxed) + 1;
          if (opts_.progress) {
            std::lock_guard<std::mutex> lock(mu);
            std::fprintf(stderr,
                         "[campaign %zu/%zu] %s: %zu runs, %.2fs\n",
                         finished, points_.size(), point.label.c_str(),
                         point.runs, run_seconds[t.point]);
          }
        }
      },
      opts_.jobs);
  interrupted_ = stop.load(std::memory_order_relaxed);

  results_.clear();
  results_.reserve(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    // Failed runs (capture_errors mode) and slots never executed
    // (interrupted campaign) are excluded from the reduction in
    // run-index order, so the surviving average is still bitwise
    // independent of the job count.
    std::vector<RunResult> ok;
    std::vector<std::string> errors;
    ok.reserve(slots[p].size());
    for (std::size_t r = 0; r < slots[p].size(); ++r) {
      if (done[p][r] != 0) {
        ok.push_back(std::move(slots[p][r]));
      } else if (!error_slots[p][r].empty()) {
        errors.push_back(std::move(error_slots[p][r]));
      }
    }
    results_.push_back(CampaignResult{
        .label = points_[p].label,
        .avg = ok.empty() ? AveragedResult{} : reduce_runs(ok),
        .run_seconds = run_seconds[p],
        .errors = std::move(errors),
        .completed_runs = ok.size()});
  }
  wall_s_ = seconds_since(t0);
  return results_;
}

common::RunningStats Campaign::time_stats() const {
  common::RunningStats stats;
  for (const CampaignResult& r : results_) {
    common::RunningStats one;
    one.add(r.avg.total_time_s);
    stats.merge(one);
  }
  return stats;
}

std::vector<CampaignResult> run_campaign(std::vector<CampaignPoint> points,
                                         CampaignOptions opts) {
  Campaign campaign(opts);
  for (auto& p : points) campaign.add(std::move(p));
  campaign.run();
  return campaign.results();
}

}  // namespace ear::sim
