// Shard-local state for the event-driven facility core.
//
// A shard is one island: the facility's natural unit of isolation. Every
// RNG stream inside a shard (its nodes' noise streams, its governors'
// dither streams) derives from the shard seed `mix_seed(facility_seed,
// shard_index)` — the same per-island seeding the reference loop uses —
// so shard advancement is fully independent of both the worker-thread
// count and the other shards. Cross-shard effects (federated cap
// re-splits, fault draws against the shared fault stream, job admission
// and completion accounting) happen only at barrier rounds, merged in
// serial shard-index order, which keeps every result bitwise-identical
// at any `sim_jobs`.
//
// Between barriers a shard advances autonomously through a *window* of
// control rounds, recording per-round INM/clock snapshots so the serial
// merge can replay readings, fault draws and completions round-by-round
// in exactly the reference loop's order. The owner-thread discipline
// follows the RROS per-CPU run-queue idiom cited in the roadmap: all
// EAR_SHARD_LOCAL members are touched only by the shard's current owner
// (one worker inside the parallel window advance, the merge thread
// between barriers — handover synchronises through the parallel_for
// join).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "simhw/cluster.hpp"
#include "simhw/demand.hpp"

namespace ear::sim {

inline constexpr std::size_t kNoJob = std::numeric_limits<std::size_t>::max();
inline constexpr std::size_t kNoRound =
    std::numeric_limits<std::size_t>::max();

/// Per-node execution/accounting state for the round loops (shared by the
/// reference loop and the event core; the reference keeps one flat array,
/// the event core one array per shard).
struct NodeSlot {
  std::size_t job = kNoJob;
  simhw::WorkDemand demand{};
  std::size_t iters_left = 0;
  double prev_inm_j = 0.0;
  double prev_clock_s = 0.0;
  common::Power last_reading{0.0};
};

/// Facility events. The global queue carries arrival/fault/EARGM
/// boundaries (anything that can change control state and therefore ends
/// a window); each shard's queue carries its phase-change events — exact
/// job-completion rounds posted by the window advance.
enum class EventKind : std::uint8_t {
  kJobArrival = 0,      // queue.admit() can change state at this round
  kFaultBoundary = 1,   // the active dropout-spec set changes
  kEargmRound = 2,      // federation barrier (cap re-split) due
  kCompletionCheck = 3  // phase change: a job finished at this round
};

struct Event {
  std::size_t round = 0;
  EventKind kind = EventKind::kJobArrival;
  std::size_t payload = 0;  // job index for completion events
};

/// Deterministic min-heap on (round, kind, payload). Duplicate events
/// compare equal, so heap internals can never leak into results.
class EventQueue {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  void push(Event e);
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  /// Round of the earliest pending event, npos when empty.
  [[nodiscard]] std::size_t next_round() const {
    return heap_.empty() ? npos : heap_.front().round;
  }
  Event pop();

 private:
  std::vector<Event> heap_;
};

/// One running job as its owning shard sees it (jobs never span islands).
struct ShardJob {
  std::size_t job = 0;                   // facility job index
  std::vector<std::size_t> local_nodes;  // island-local, ascending
  bool live = false;
  bool completion_posted = false;
};

struct Shard {
  std::size_t index = 0;            // == island index
  std::uint64_t seed = 0;           // mix_seed(facility seed, index);
                                    // root of every stream in the shard
  simhw::Cluster* cluster = nullptr;
  std::size_t offset = 0;           // first global node index
  std::size_t size = 0;

  EAR_SHARD_LOCAL std::vector<NodeSlot> slots;
  /// Round in which each node drained its current job (kNoRound while
  /// work remains); reset at admission.
  EAR_SHARD_LOCAL std::vector<std::size_t> done_round;
  EAR_SHARD_LOCAL std::vector<ShardJob> jobs;
  /// Phase-change events (exact completion rounds) for the merge.
  EAR_SHARD_LOCAL EventQueue events;
  /// Per-(window round, local node) INM energy / clock snapshots: the
  /// serial merge replays readings and completions from these, so a
  /// mid-window termination never observes over-advanced node state.
  EAR_SHARD_LOCAL std::vector<double> win_inm_j;
  EAR_SHARD_LOCAL std::vector<double> win_clock_s;
  /// Per-(window round, local node) power readings, computed inside the
  /// parallel phase with the reference loop's exact arithmetic
  /// (delta-energy over delta-clock against the previous round, holding
  /// the last finite reading when the clock did not move). The serial
  /// merge only loads and sums these, keeping the barrier O(nodes) adds.
  EAR_SHARD_LOCAL std::vector<double> win_reading_w;

  /// Reset slots' prev-energy/clock bookkeeping to the snapshots of
  /// window round `w` — used when termination lands mid-window, so the
  /// epilogue reads node state exactly as of the final merged round.
  void rewind_to(std::size_t w);

  /// Advance every node of the shard through `rounds` control rounds
  /// starting at `first_round`, one phase-stable stretch per busy node
  /// per round, idling to each round boundary; then post completion
  /// events for jobs that drained inside the window. Owner-thread only.
  void advance_window(double round_s, std::size_t first_round,
                      std::size_t rounds);
};

}  // namespace ear::sim
