// Chaos mode: run the policy matrix under a fault plan and check the
// resilience invariants. For every policy the engine runs a clean point
// and a faulted point with the same seeds, then verifies that
//
//   * no run crashed (exceptions are captured per run, not fatal),
//   * every reported metric stayed finite and physical,
//   * the time penalty of the faulted runs vs the clean runs stays
//     under a configurable bound (faults degrade, never wedge), and
//   * every EARL session either kept settling or cleanly degraded
//     (the settle-or-degrade rule; see FaultReport::unsettled_nodes).
//
// The report carries injected / detected / recovered fault counts so a
// campaign can show that the resilience layer actually exercised.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "sim/runner.hpp"

namespace ear::sim {

struct ChaosOptions {
  std::string app = "bqcd";
  /// The policy matrix: eUFS policies plus their CPU-only baselines.
  std::vector<std::string> policies = {"min_energy_eufs", "min_energy",
                                       "min_time", "monitoring"};
  /// The fault plan to arm (required, non-empty).
  std::shared_ptr<const faults::FaultPlan> plan;
  std::uint64_t seed = 1;
  std::size_t runs = 2;
  std::size_t jobs = 0;
  /// Invariant: faulted time must stay within this penalty of clean.
  double time_penalty_bound_pct = 75.0;
  /// Arm the EARGM cluster manager (clean and faulted points alike) —
  /// required for node_dropout faults to have a consumer.
  std::optional<double> budget_w;
};

struct ChaosPointReport {
  std::string policy;
  AveragedResult clean;
  AveragedResult faulted;
  Comparison vs_clean;
  std::vector<std::string> violations;
};

struct ChaosReport {
  std::vector<ChaosPointReport> points;
  /// Fault counters summed over every faulted point.
  faults::FaultReport totals;

  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] bool ok() const { return violation_count() == 0; }
};

/// Run the chaos campaign (deterministic for a given seed/plan/policy
/// list, independent of the job count).
[[nodiscard]] ChaosReport run_chaos(const ChaosOptions& opts);

/// Render the chaos report as ASCII tables (one summary row per policy,
/// plus a violation listing when anything failed).
void print_chaos_report(const ChaosReport& report);

}  // namespace ear::sim
