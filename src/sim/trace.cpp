#include "sim/trace.hpp"

#include "common/csv.hpp"

namespace ear::sim {

void write_timeline_csv(const RunResult& result, std::ostream& out) {
  common::CsvWriter csv(out);
  csv.header({"t_s", "cpu_ghz", "imc_ghz", "dc_power_w"});
  for (const TimelinePoint& p : result.timeline) {
    csv.row({common::CsvWriter::num(p.t_s, 3),
             common::CsvWriter::num(p.cpu_ghz, 3),
             common::CsvWriter::num(p.imc_ghz, 3),
             common::CsvWriter::num(p.dc_power_w, 1)});
  }
}

void write_nodes_csv(const RunResult& result, std::ostream& out) {
  common::CsvWriter csv(out);
  csv.header({"node", "elapsed_s", "energy_j", "pkg_energy_j",
              "avg_dc_power_w", "avg_pkg_power_w", "avg_cpu_ghz",
              "avg_imc_ghz", "cpi", "tpi", "gbps", "vpi", "signatures",
              "msr_writes"});
  for (std::size_t n = 0; n < result.nodes.size(); ++n) {
    const NodeResult& r = result.nodes[n];
    csv.row({std::to_string(n), common::CsvWriter::num(r.elapsed_s, 2),
             common::CsvWriter::num(r.energy_j, 1),
             common::CsvWriter::num(r.pkg_energy_j, 1),
             common::CsvWriter::num(r.avg_dc_power_w, 2),
             common::CsvWriter::num(r.avg_pkg_power_w, 2),
             common::CsvWriter::num(r.avg_cpu_ghz, 3),
             common::CsvWriter::num(r.avg_imc_ghz, 3),
             common::CsvWriter::num(r.cpi, 4),
             common::CsvWriter::num(r.tpi, 5),
             common::CsvWriter::num(r.gbps, 2),
             common::CsvWriter::num(r.vpi, 3),
             std::to_string(r.signatures), std::to_string(r.msr_writes)});
  }
}

}  // namespace ear::sim
