#include "sim/trace.hpp"

#include "common/csv.hpp"

namespace ear::sim {

// Both exports use common::exact_double: the CSVs are re-read by plotting
// and diffing tools, so every value must round-trip bit-exactly and be
// independent of the process locale. Presentation rounding belongs to the
// table layer, not the serialisation layer.

void write_timeline_csv(const RunResult& result, std::ostream& out) {
  common::CsvWriter csv(out);
  csv.header({"t_s", "cpu_ghz", "imc_ghz", "dc_power_w"});
  for (const TimelinePoint& p : result.timeline) {
    csv.row({common::exact_double(p.t_s),
             common::exact_double(p.cpu_ghz),
             common::exact_double(p.imc_ghz),
             common::exact_double(p.dc_power_w)});
  }
}

void write_nodes_csv(const RunResult& result, std::ostream& out) {
  common::CsvWriter csv(out);
  csv.header({"node", "elapsed_s", "energy_j", "pkg_energy_j",
              "avg_dc_power_w", "avg_pkg_power_w", "avg_cpu_ghz",
              "avg_imc_ghz", "cpi", "tpi", "gbps", "vpi", "signatures",
              "msr_writes"});
  for (std::size_t n = 0; n < result.nodes.size(); ++n) {
    const NodeResult& r = result.nodes[n];
    csv.row({std::to_string(n), common::exact_double(r.elapsed_s),
             common::exact_double(r.energy_j),
             common::exact_double(r.pkg_energy_j),
             common::exact_double(r.avg_dc_power_w),
             common::exact_double(r.avg_pkg_power_w),
             common::exact_double(r.avg_cpu_ghz),
             common::exact_double(r.avg_imc_ghz),
             common::exact_double(r.cpi),
             common::exact_double(r.tpi),
             common::exact_double(r.gbps),
             common::exact_double(r.vpi),
             std::to_string(r.signatures), std::to_string(r.msr_writes)});
  }
}

}  // namespace ear::sim
