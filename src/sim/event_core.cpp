#include "sim/event_core.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "eard/eard.hpp"
#include "faults/schedule.hpp"
#include "sim/shard.hpp"
#include "simhw/cluster.hpp"

namespace ear::sim {

namespace {

/// Longest stretch of control rounds one barrier may cover. Bounds the
/// per-shard snapshot buffers (window * nodes doubles) and how far a
/// shard can run ahead of a completion that would end the simulation.
constexpr std::size_t kMaxWindow = 64;

/// Per-running-job bookkeeping (admission order).
struct RunningJob {
  std::size_t job = 0;
  std::size_t island = 0;
  std::size_t shard_job = 0;  // index into the owning shard's job list
  std::vector<std::size_t> local_nodes;
  double start_inm_j = 0.0;
  bool live = false;
};

/// First round whose start time r * round_s is at or after `s`.
std::size_t round_at_or_after(double s, double round_s) {
  if (s <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(s / round_s));
}

/// Persistent shard workers behind an epoch spin-barrier.
///
/// A condition-variable pool costs ~10 us per wake; with a live
/// federation every window is a single control round, so the facility
/// dispatches hundreds of times per run and the wake cost would rival
/// the shard work itself. Workers spin briefly (yielding periodically to
/// stay polite on shared hosts) on an epoch counter instead, bringing a
/// dispatch down to about a microsecond. The calling thread runs the
/// last partition itself, so `helpers + 1` partitions execute per epoch
/// and a crew of one helper still halves the wall time.
class ShardCrew {
 public:
  /// `partitions` = helpers + 1; `body(i)` must be safe to run
  /// concurrently for distinct i (each shard is owned by exactly one
  /// partition per epoch).
  ShardCrew(std::size_t partitions, std::function<void(std::size_t)> body)
      : partitions_(partitions), body_(std::move(body)) {
    EAR_CHECK(partitions_ >= 2);
    for (std::size_t p = 0; p + 1 < partitions_; ++p) {
      threads_.emplace_back([this, p] { worker(p); });
    }
  }

  ~ShardCrew() {
    quit_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
  }

  ShardCrew(const ShardCrew&) = delete;
  ShardCrew& operator=(const ShardCrew&) = delete;

  /// Run body(i) for every i in [0, n), statically partitioned over the
  /// crew; returns after all partitions finish. Rethrows the first
  /// exception any partition produced.
  void run(std::size_t n) {
    n_ = n;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    run_partition(partitions_ - 1);
    std::size_t spins = 0;
    while (done_.load(std::memory_order_acquire) + 1 < partitions_) {
      if (++spins > kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  static constexpr std::size_t kSpinLimit = 4096;

  void run_partition(std::size_t p) {
    const std::size_t lo = p * n_ / partitions_;
    const std::size_t hi = (p + 1) * n_ / partitions_;
    try {
      for (std::size_t i = lo; i < hi; ++i) body_(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu_);
      if (!error_) error_ = std::current_exception();
    }
  }

  void worker(std::size_t p) {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t e = seen;
      std::size_t spins = 0;
      while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
        if (++spins > kSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      seen = e;
      if (quit_.load(std::memory_order_relaxed)) return;
      run_partition(p);
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  std::size_t partitions_;
  std::function<void(std::size_t)> body_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> quit_{false};
  std::size_t n_ = 0;
  std::mutex err_mu_;
  std::exception_ptr error_;
};

}  // namespace

FacilityResult run_facility_event(const FacilityConfig& cfg) {
  EAR_CHECK_MSG(!cfg.islands.empty(), "facility needs at least one island");
  EAR_CHECK_MSG(cfg.round_s > 0.0, "control round must be positive");
  EAR_CHECK_MSG(cfg.max_sim_s > cfg.round_s, "max_sim_s too small");
  const auto wall_t0 = std::chrono::steady_clock::now();

  // Hardware: one shard per island. Node streams are rooted at
  // mix_seed(seed, island) exactly as the reference loop seeds its
  // clusters, so shard advancement is independent of worker count.
  std::vector<std::unique_ptr<simhw::Cluster>> clusters(cfg.islands.size());
  std::vector<Shard> shards(cfg.islands.size());
  std::size_t total_nodes = 0;
  for (std::size_t i = 0; i < cfg.islands.size(); ++i) {
    EAR_CHECK_MSG(cfg.islands[i].nodes > 0, "island has no nodes");
    Shard& sh = shards[i];
    sh.index = i;
    sh.seed = common::mix_seed(cfg.seed, i);
    sh.offset = total_nodes;
    sh.size = cfg.islands[i].nodes;
    total_nodes += sh.size;
    sh.slots.resize(sh.size);
    sh.done_round.assign(sh.size, kNoRound);
  }
  // Island hardware builds concurrently: every stream in a cluster is
  // rooted at the island seed, so the result is bitwise-independent of
  // the worker count (and of whether the build ran concurrently at all).
  common::parallel_for(
      shards.size(),
      [&](std::size_t i) {
        clusters[i] = std::make_unique<simhw::Cluster>(
            cfg.islands[i].node_config, cfg.islands[i].nodes,
            shards[i].seed, cfg.noise, cfg.ufs);
        shards[i].cluster = clusters[i].get();
      },
      cfg.sim_jobs, /*grain=*/1);

  std::vector<eard::NodeDaemon> daemons;
  daemons.reserve(total_nodes);
  for (Shard& sh : shards) {
    for (std::size_t n = 0; n < sh.size; ++n) {
      daemons.emplace_back(sh.cluster->node(n));
    }
  }

  std::unique_ptr<eargm::FederatedEargm> federation;
  if (cfg.budget.value > 0.0) {
    std::vector<std::vector<eard::NodeDaemon*>> groups;
    for (const Shard& sh : shards) {
      std::vector<eard::NodeDaemon*> group;
      for (std::size_t n = 0; n < sh.size; ++n) {
        group.push_back(&daemons[sh.offset + n]);
      }
      groups.push_back(std::move(group));
    }
    federation = std::make_unique<eargm::FederatedEargm>(
        eargm::FederationConfig{.facility_budget = cfg.budget,
                                .island = cfg.island_eargm,
                                .floor_share = cfg.floor_share},
        std::move(groups));
  }

  const auto wall_t1 = std::chrono::steady_clock::now();

  std::vector<std::size_t> island_sizes;
  for (const Shard& sh : shards) island_sizes.push_back(sh.size);
  JobQueue queue(cfg.jobs, island_sizes, cfg.backfill);

  FacilityResult out;
  out.budget_w = cfg.budget.value;
  out.jobs.resize(queue.jobs().size());
  for (std::size_t j = 0; j < queue.jobs().size(); ++j) {
    out.jobs[j].name = queue.jobs()[j].name;
    out.jobs[j].submit_s = queue.jobs()[j].submit_s;
  }

  // Global control-plane events: anything that can change facility state
  // at a round boundary ends the current window there.
  EventQueue global_events;
  {
    std::vector<std::size_t> arrival_rounds;
    for (const FacilityJob& job : queue.jobs()) {
      arrival_rounds.push_back(
          round_at_or_after(job.submit_s, cfg.round_s));
    }
    std::sort(arrival_rounds.begin(), arrival_rounds.end());
    arrival_rounds.erase(
        std::unique(arrival_rounds.begin(), arrival_rounds.end()),
        arrival_rounds.end());
    for (std::size_t r : arrival_rounds) {
      global_events.push({r, EventKind::kJobArrival, 0});
    }
  }
  faults::FaultSchedule fault_sched(cfg.fault_plan, cfg.round_s,
                                    cfg.max_sim_s);
  for (std::size_t b : fault_sched.boundaries()) {
    global_events.push({b, EventKind::kFaultBoundary, 0});
  }
  if (federation) {
    // The federation schedules its own cadence: every completed round
    // posts the next cap-re-split barrier. (With a live federation every
    // window is one round anyway — caps mutate node daemons, which is
    // control-plane state the shards would otherwise run ahead of.)
    federation->set_round_hook(
        [&global_events](std::size_t rounds_completed, common::Power) {
          global_events.push(
              {rounds_completed, EventKind::kEargmRound, 0});
        });
  }

  // Serial cross-shard state: the readings buffer and the fault stream
  // are reduced/drawn in shard-index order at barrier merges only.
  EAR_REDUCED_SERIAL std::vector<double> readings(total_nodes, 0.0);
  common::Rng fault_rng(common::mix_seed(cfg.seed, 0xFAC111));

  // Persistent spin-barrier crew for the parallel phase (see ShardCrew).
  // crew_round/crew_window are published to the workers by the epoch
  // increment inside run() (release/acquire pairing).
  const std::size_t crew_size =
      std::min(common::resolve_jobs(cfg.sim_jobs), shards.size());
  std::size_t crew_round = 0;
  std::size_t crew_window = 1;
  std::unique_ptr<ShardCrew> crew;
  if (crew_size > 1) {
    crew = std::make_unique<ShardCrew>(
        crew_size,
        [&shards, &cfg, &crew_round, &crew_window](std::size_t i) {
          shards[i].advance_window(cfg.round_s, crew_round, crew_window);
        });
  }

  double last_fault_end_s = 0.0;
  for (const auto& f : cfg.fault_plan.specs) {
    if (f.family == faults::FaultFamily::kNodeDropout ||
        f.family == faults::FaultFamily::kIslandDropout) {
      last_fault_end_s =
          std::max(last_fault_end_s, std::min(f.end_s, cfg.max_sim_s));
    }
  }

  bool nonfinite = false;
  bool wedged = false;
  std::size_t persistent_overruns = 0;
  std::size_t consecutive_over = 0;
  const double slack_w = cfg.budget.value * cfg.cap_slack_pct / 100.0;

  std::vector<RunningJob> running;  // admission order
  std::vector<std::size_t> job_running(queue.jobs().size(), kNoJob);
  std::size_t live_jobs = 0;
  bool finished = false;

  std::size_t round = 0;
  while (true) {
    const double now = static_cast<double>(round) * cfg.round_s;
    const double round_end = now + cfg.round_s;
    if (round_end > cfg.max_sim_s) {
      wedged = live_jobs > 0 || !queue.all_started();
      break;
    }

    // Retire control events due at this barrier; what remains bounds the
    // next window.
    while (!global_events.empty() &&
           global_events.next_round() <= round) {
      (void)global_events.pop();
    }

    // Admission: arrivals up to `now`, lowest free nodes, backfill —
    // byte-for-byte the reference loop's admission, against shard slots.
    for (JobStart& start : queue.admit(now)) {
      const FacilityJob& job = queue.jobs()[start.job];
      const simhw::NodeConfig& node_cfg =
          cfg.islands[start.island].node_config;
      workload::SyntheticSpec spec = job.work;
      spec.active_cores =
          std::min(spec.active_cores, node_cfg.total_cores());
      const simhw::WorkDemand demand =
          workload::make_demand(node_cfg, spec);

      Shard& sh = shards[start.island];
      RunningJob rj{.job = start.job,
                    .island = start.island,
                    .shard_job = sh.jobs.size(),
                    .local_nodes = std::move(start.local_nodes),
                    .start_inm_j = 0.0,
                    .live = true};
      for (std::size_t local : rj.local_nodes) {
        NodeSlot& slot = sh.slots[local];
        slot.job = start.job;
        slot.demand = demand;
        slot.iters_left = spec.iterations;
        sh.done_round[local] = spec.iterations == 0 ? round : kNoRound;
        rj.start_inm_j += sh.cluster->node(local).inm().exact().value;
      }
      sh.jobs.push_back(ShardJob{.job = start.job,
                                 .local_nodes = rj.local_nodes,
                                 .live = true,
                                 .completion_posted = false});
      FacilityJobOutcome& o = out.jobs[start.job];
      o.island = start.island;
      o.nodes = rj.local_nodes.size();
      o.start_s = now;
      job_running[start.job] = running.size();
      running.push_back(std::move(rj));
      ++live_jobs;
    }

    // Window: how many rounds can every shard integrate autonomously?
    // One, unless no control-plane event can land inside the stretch: a
    // live federation re-splits caps every round, a pending job may
    // admit as soon as a completion frees nodes, and arrival / fault
    // boundaries pin their exact rounds. Completions inside a window are
    // safe — the merge replays them round-by-round from snapshots.
    std::size_t window = 1;
    if (!federation && queue.pending() == 0) {
      while (window < kMaxWindow &&
             static_cast<double>(round + window) * cfg.round_s +
                     cfg.round_s <=
                 cfg.max_sim_s) {
        ++window;
      }
      const std::size_t next_event = global_events.next_round();
      if (next_event != EventQueue::npos) {
        window = std::min(window, next_event - round);
      }
    }

    // Parallel phase: each worker owns whole shards; every RNG draw in
    // here comes from a shard-local stream.
    if (crew) {
      crew_round = round;
      crew_window = window;
      crew->run(shards.size());
    } else {
      for (Shard& sh : shards) {
        sh.advance_window(cfg.round_s, round, window);
      }
    }

    // Serial merge: replay the window round-by-round in shard-index
    // order — the same readings arithmetic, fault-stream draw order and
    // completion order as the reference loop's per-round tail.
    for (std::size_t w = 0; w < window; ++w) {
      const std::size_t r = round + w;
      const double rnow = static_cast<double>(r) * cfg.round_s;
      const double rend = rnow + cfg.round_s;

      // The shards already computed this round's readings with the
      // reference arithmetic; the barrier only loads and sums them, in
      // the same shard-index/node order the reference sweep uses.
      double total_w = 0.0;
      for (Shard& sh : shards) {
        const double* win = sh.win_reading_w.data() + w * sh.size;
        double* dst = readings.data() + sh.offset;
        for (std::size_t n = 0; n < sh.size; ++n) {
          dst[n] = win[n];
          total_w += dst[n];
        }
      }
      if (!std::isfinite(total_w)) nonfinite = true;
      out.peak_power_w = std::max(out.peak_power_w, total_w);

      if (cfg.budget.value > 0.0) {
        const double overrun = total_w - cfg.budget.value;
        if (overrun > 0.0) {
          ++out.cap_overrun_rounds;
          out.worst_overrun_w = std::max(out.worst_overrun_w, overrun);
        }
        bool degraded = true;
        if (federation) {
          for (std::size_t i = 0; i < federation->islands(); ++i) {
            if (federation->island(i).current_limit() <
                cfg.island_eargm.deepest_limit) {
              degraded = false;
              break;
            }
          }
        }
        if (rnow >= last_fault_end_s && overrun > slack_w && !degraded) {
          if (++consecutive_over > cfg.overrun_grace) {
            ++persistent_overruns;
          }
        } else {
          consecutive_over = 0;
        }
      }

      // Fault tier: rounds outside every activity window are draw-free
      // in both engines, so the schedule gate skips only dead scans.
      if (fault_sched.any_active(r)) {
        for (const auto& f : cfg.fault_plan.specs) {
          if (!f.active_at(rnow)) continue;
          if (f.family == faults::FaultFamily::kNodeDropout) {
            for (std::size_t g = 0; g < total_nodes; ++g) {
              if (!f.applies_to_node(g)) continue;
              if (fault_rng.uniform() < f.probability) {
                if (std::isfinite(readings[g])) {
                  ++out.faults.dropped_readings;
                }
                readings[g] = std::numeric_limits<double>::quiet_NaN();
              }
            }
          } else if (f.family == faults::FaultFamily::kIslandDropout) {
            for (std::size_t i = 0; i < shards.size(); ++i) {
              if (!f.applies_to_island(i)) continue;
              if (fault_rng.uniform() < f.probability) {
                ++out.faults.island_dropouts;
                for (std::size_t n = 0; n < shards[i].size; ++n) {
                  readings[shards[i].offset + n] =
                      std::numeric_limits<double>::quiet_NaN();
                }
              }
            }
          }
        }
      }

      if (federation) federation->update(readings);

      // Completions: the shards posted exact phase-change events for
      // every job that drained in this window; pop the ones due at this
      // round (shard-index order) and settle them in admission order.
      std::vector<std::size_t> due;
      for (Shard& sh : shards) {
        while (!sh.events.empty() && sh.events.next_round() <= r) {
          due.push_back(job_running[sh.events.pop().payload]);
        }
      }
      std::sort(due.begin(), due.end());
      for (std::size_t ri : due) {
        RunningJob& rj = running[ri];
        EAR_CHECK(rj.live);
        Shard& sh = shards[rj.island];
        double end_inm = 0.0;
        for (std::size_t local : rj.local_nodes) {
          end_inm += sh.win_inm_j[w * sh.size + local];
          sh.slots[local].job = kNoJob;
        }
        FacilityJobOutcome& o = out.jobs[rj.job];
        o.end_s = rend;
        o.energy_j = end_inm - rj.start_inm_j;
        if (!std::isfinite(o.energy_j)) nonfinite = true;
        out.makespan_s = std::max(out.makespan_s, o.end_s);
        queue.release(rj.island, rj.local_nodes);
        sh.jobs[rj.shard_job].live = false;
        rj.live = false;
        --live_jobs;
      }
      out.rounds = r + 1;

      if (live_jobs == 0 && queue.all_started()) {
        // Termination may land mid-window: the shards over-integrated
        // the tail rounds, so rewind their per-node bookkeeping to this
        // round's snapshots — the epilogue then reads node state exactly
        // as a reference run that stopped here would. Single-round
        // windows take no snapshots and need no rewind: the slots'
        // prev-* values already are this round's state.
        if (window > 1) {
          for (Shard& sh : shards) sh.rewind_to(w);
        }
        finished = true;
        break;
      }
    }
    if (finished) break;
    round += window;
  }
  out.walls.build_s =
      std::chrono::duration<double>(wall_t1 - wall_t0).count();
  out.walls.core_s = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - wall_t1).count();

  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Shard& sh = shards[i];
    FacilityIslandOutcome io;
    io.node_type = cfg.islands[i].node_config.name;
    io.nodes = sh.size;
    for (std::size_t n = 0; n < sh.size; ++n) {
      io.energy_j += sh.slots[n].prev_inm_j;
    }
    if (!std::isfinite(io.energy_j)) nonfinite = true;
    if (federation) {
      const eargm::EargmManager& m = federation->island(i);
      io.final_budget_w = federation->island_budget(i).value;
      io.final_limit = m.current_limit();
      io.throttles = m.throttle_events();
      io.releases = m.release_events();
      io.blind_rounds = m.blind_rounds();
      io.missed_readings = m.missed_readings();
      io.resumed_nodes = m.resumed_nodes();
    }
    out.facility_energy_j += io.energy_j;
    out.islands.push_back(std::move(io));
  }
  if (federation) {
    out.redistributions = federation->redistributions();
    out.facility_blind_rounds = federation->facility_blind_rounds();
    out.faults.missed_readings = federation->total_missed_readings();
  }
  out.backfills = queue.backfills();
  out.peak_pending_jobs = queue.peak_pending();

  if (nonfinite) {
    out.violations.push_back("non-finite energy/power in ground truth");
  }
  if (wedged) {
    out.violations.push_back("facility wedged: max_sim_s reached with " +
                             std::to_string(live_jobs) +
                             " jobs running");
  }
  if (persistent_overruns > 0) {
    out.violations.push_back(
        "cap overrun beyond " +
        common::AsciiTable::num(cfg.cap_slack_pct, 0) +
        "% slack persisted past the grace window in " +
        std::to_string(persistent_overruns) + " rounds");
  }
  return out;
}

}  // namespace ear::sim
