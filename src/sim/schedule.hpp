// Multi-job cluster scheduling: several jobs with disjoint node
// allocations and staggered submissions share one cluster, optionally
// under a single EARGM power budget — the deployment scenario EAR's
// control service actually targets (one manager, many jobs, each node
// running its own EARL instance).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "eard/eardbd.hpp"
#include "earl/settings.hpp"
#include "eargm/eargm.hpp"
#include "workload/phase.hpp"

namespace ear::sim {

struct JobSpec {
  workload::AppModel app;
  earl::EarlSettings earl{};
  /// Nodes [first_node, first_node + app.nodes) of the cluster.
  std::size_t first_node = 0;
  /// Submission time; the job's nodes idle until then.
  double start_time_s = 0.0;
};

struct ScheduleConfig {
  simhw::NodeConfig node_config;
  std::size_t cluster_nodes = 0;
  std::vector<JobSpec> jobs;
  /// One manager over the whole cluster (idle nodes count against the
  /// budget at their idle power).
  std::optional<eargm::EargmConfig> eargm;
  std::uint64_t seed = 1;
  simhw::NoiseModel noise{};
};

struct JobOutcome {
  std::string app_name;
  std::string policy;
  double start_s = 0.0;
  double end_s = 0.0;     // slowest allocated node
  double energy_j = 0.0;  // over the job's allocation, start..end
  double avg_cpu_ghz = 0.0;
  double avg_imc_ghz = 0.0;
  [[nodiscard]] double elapsed_s() const { return end_s - start_s; }
};

struct ScheduleResult {
  std::vector<JobOutcome> jobs;
  double makespan_s = 0.0;        // last job end
  double cluster_energy_j = 0.0;  // all nodes, 0..makespan (incl. idle)
  double peak_aggregate_w = 0.0;  // max per-round cluster power
  std::size_t eargm_throttles = 0;
  /// All per-node job records, ready for EARDBD ingestion.
  eard::Accounting accounting;
};

/// Run the schedule. Throws ConfigError on overlapping allocations or
/// allocations outside the cluster.
[[nodiscard]] ScheduleResult run_schedule(const ScheduleConfig& cfg);

}  // namespace ear::sim
