#include "sim/shard.hpp"

#include <algorithm>

namespace ear::sim {

namespace {

/// Min-heap "later than" order on (round, kind, payload). Total and
/// deterministic: two events comparing equal are byte-identical, so the
/// pop order of duplicates can never leak into results.
bool later(const Event& a, const Event& b) {
  if (a.round != b.round) return a.round > b.round;
  if (a.kind != b.kind) return a.kind > b.kind;
  return a.payload > b.payload;
}

}  // namespace

void EventQueue::push(Event e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Event EventQueue::pop() {
  EAR_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Event e = heap_.back();
  heap_.pop_back();
  return e;
}

void Shard::advance_window(double round_s, std::size_t first_round,
                           std::size_t rounds) {
  // The INM snapshot feeds job-energy accounting at every window size;
  // the clock snapshot only feeds rewind_to, which mid-window
  // termination never needs for a single-round window (the slots'
  // prev-* bookkeeping already is that round's snapshot).
  const bool snapshot = rounds > 1;
  win_inm_j.resize(rounds * size);
  if (snapshot) win_clock_s.resize(rounds * size);
  win_reading_w.resize(rounds * size);
  for (std::size_t w = 0; w < rounds; ++w) {
    const double round_end =
        static_cast<double>(first_round + w) * round_s + round_s;
    // Iterate the cluster directly: node(n) is an out-of-line
    // bounds-checked call, and this loop is the simulator's innermost.
    std::size_t n = 0;
    for (simhw::SimNode& node : *cluster) {
      NodeSlot& slot = slots[n];
      // Guard on the clock too: a multi-second iteration overshoots the
      // round boundary and then sits out the following rounds, and
      // execute_stretch's hoisted setup is pure waste on those (~45% of
      // all node-rounds in the capped busy-regime bench).
      if (slot.job != kNoJob && slot.iters_left > 0 &&
          node.clock().value < round_end) {
        // One phase-stable stretch: closed-form governor integration in
        // place of the reference loop's iteration-at-a-time stepping.
        const simhw::StretchSummary s =
            node.execute_stretch(slot.demand, slot.iters_left, round_end);
        slot.iters_left -= s.iterations;
        if (slot.iters_left == 0) done_round[n] = first_round + w;
      }
      const double gap = round_end - node.clock().value;
      // idle_cached: bitwise-identical to idle() (same deposits, same
      // governor run) with the constant idle power memoised — the bulk
      // of a mostly-idle facility's node-rounds.
      if (gap > 0.0) node.idle_cached(common::Secs{gap});
      const double e = node.inm().exact().value;
      const double t = node.clock().value;
      win_inm_j[w * size + n] = e;
      if (snapshot) win_clock_s[w * size + n] = t;
      // The reference loop's reading arithmetic, verbatim: power is the
      // INM delta over the clock delta since the previous round, and a
      // stalled clock holds the last reading.
      const double de = e - slot.prev_inm_j;
      const double dt = t - slot.prev_clock_s;
      if (dt > 0.0) slot.last_reading = common::Power{de / dt};
      slot.prev_inm_j = e;
      slot.prev_clock_s = t;
      win_reading_w[w * size + n] = slot.last_reading.value;
      ++n;
    }
  }

  // Post exact phase-change events for jobs that drained this window. The
  // merge completes a job the round its slowest node finishes — the same
  // round the reference sweep would detect it.
  for (ShardJob& j : jobs) {
    if (!j.live || j.completion_posted) continue;
    std::size_t done_at = 0;
    bool done = true;
    for (std::size_t local : j.local_nodes) {
      if (slots[local].iters_left > 0) {
        done = false;
        break;
      }
      done_at = std::max(done_at, done_round[local]);
    }
    if (done) {
      events.push({done_at, EventKind::kCompletionCheck, j.job});
      j.completion_posted = true;
    }
  }
}

void Shard::rewind_to(std::size_t w) {
  for (std::size_t n = 0; n < size; ++n) {
    slots[n].prev_inm_j = win_inm_j[w * size + n];
    slots[n].prev_clock_s = win_clock_s[w * size + n];
  }
}

}  // namespace ear::sim
