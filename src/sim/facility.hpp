// Facility tier: thousands of heterogeneous nodes, a job arrival
// stream, and hierarchical EARGM federation under a facility-wide
// power cap.
//
// The facility is a set of *islands* — homogeneous partitions built
// from the simhw node-config factories (Skylake 6148, Ice Lake 8358,
// GPU 6142M) — fed by a JobQueue (arrival stream + backfill). Execution
// is round-based: every control round each node advances its work to
// the round boundary, per-node average powers are derived from the INM
// energy counters, node/island dropout faults hide readings, and the
// FederatedEargm steps the island P-state caps and re-splits the
// facility budget. Results are bitwise-deterministic at any `jobs`
// (worker-thread) count: nodes are advanced independently and every
// reduction walks island/node index order.
//
// Chaos invariants (checked into FacilityResult::violations):
//   * no non-finite energy/power anywhere in the ground truth;
//   * the cap degrades gracefully — transient overruns are expected
//     (island caps step one P-state per round) but an overrun beyond
//     `cap_slack_pct` must not persist longer than `overrun_grace`
//     consecutive rounds unless every island is already throttled to
//     the deepest limit (degraded, nothing left to shed);
//   * the facility must drain: hitting `max_sim_s` with jobs still
//     running is a wedge, not a result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eargm/federation.hpp"
#include "faults/fault_plan.hpp"
#include "sim/job_queue.hpp"
#include "simhw/config.hpp"
#include "simhw/hw_ufs.hpp"
#include "simhw/node.hpp"

namespace ear::sim {

/// Simulation engine selection. kReference is the original
/// round/tick loop, kept verbatim as the executable specification;
/// kEvent is the event-driven sharded core that integrates closed-form
/// through phase-stable stretches. The two produce bitwise-identical
/// results whenever the UFS dither gate is closed (dither_probability
/// == 0), and tolerance-bounded results otherwise (see
/// docs/performance.md).
enum class SimCore {
  kReference,
  kEvent,
};

/// Parse "reference" / "event" (CLI --core values); throws ConfigError.
[[nodiscard]] SimCore parse_sim_core(const std::string& name);
[[nodiscard]] const char* sim_core_name(SimCore core);

/// One homogeneous partition of the facility.
struct FacilityIsland {
  simhw::NodeConfig node_config;
  std::size_t nodes = 0;
};

struct FacilityConfig {
  std::vector<FacilityIsland> islands;
  std::vector<FacilityJob> jobs;
  /// Control round length in simulated seconds (EARGM period).
  double round_s = 1.0;
  /// Facility power cap; 0 disables the federation entirely.
  common::Power budget{0.0};
  /// Island-tier manager template (margins, deepest limit).
  eargm::EargmConfig island_eargm{};
  /// Even-split floor share of the budget (see FederationConfig).
  double floor_share = 0.25;
  bool backfill = true;
  std::uint64_t seed = 1;
  /// Worker threads for the per-round node advance (0 = auto). Results
  /// are identical for any value.
  std::size_t sim_jobs = 1;
  /// node_dropout / island_dropout specs (other families are ignored at
  /// this tier — they live in the per-node injector).
  faults::FaultPlan fault_plan{};
  simhw::NoiseModel noise{};
  /// UFS governor parameters for every node. dither_probability == 0
  /// closes the dither gate, which makes the event core bitwise-equal to
  /// the reference loop (and both engines draw-free in the governor).
  simhw::HwUfsParams ufs{};
  /// Engine: reference round loop or event-driven sharded core.
  SimCore core = SimCore::kReference;
  /// Hard stop; reaching it with unfinished jobs is a violation.
  double max_sim_s = 36000.0;
  /// Documented cap slack: persistent overruns beyond this are a
  /// violation (transients within `overrun_grace` rounds are not).
  double cap_slack_pct = 15.0;
  std::size_t overrun_grace = 30;
};

/// Host-side wall-clock instrumentation, filled by both engines. Not
/// part of the simulated result (differential tests ignore it): build
/// covers facility assembly (clusters, daemons, federation) — identical
/// code on either engine — and core covers the round loop itself, the
/// part the engines implement differently.
struct FacilityWalls {
  double build_s = 0.0;
  double core_s = 0.0;
};

struct FacilityJobOutcome {
  std::string name;
  std::size_t island = 0;
  std::size_t nodes = 0;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  double energy_j = 0.0;

  [[nodiscard]] double wait_s() const { return start_s - submit_s; }
  [[nodiscard]] double turnaround_s() const { return end_s - submit_s; }
};

struct FacilityIslandOutcome {
  std::string node_type;
  std::size_t nodes = 0;
  double energy_j = 0.0;
  double final_budget_w = 0.0;  // 0 when uncapped
  std::size_t final_limit = 0;  // P-state cap at the end
  std::size_t throttles = 0;
  std::size_t releases = 0;
  std::size_t blind_rounds = 0;
  std::size_t missed_readings = 0;
  std::size_t resumed_nodes = 0;
};

struct FacilityResult {
  std::vector<FacilityJobOutcome> jobs;
  std::vector<FacilityIslandOutcome> islands;
  double makespan_s = 0.0;
  double facility_energy_j = 0.0;
  double peak_power_w = 0.0;        // ground truth, before dropouts
  double budget_w = 0.0;            // 0 when uncapped
  std::size_t rounds = 0;
  std::size_t cap_overrun_rounds = 0;  // rounds with power above budget
  double worst_overrun_w = 0.0;
  std::size_t redistributions = 0;
  std::size_t facility_blind_rounds = 0;
  std::size_t backfills = 0;
  std::size_t peak_pending_jobs = 0;
  faults::FaultReport faults;
  /// Empty when every chaos invariant held.
  std::vector<std::string> violations;
  FacilityWalls walls;

  [[nodiscard]] double mean_wait_s() const;
  [[nodiscard]] double mean_turnaround_s() const;
};

/// Run the facility to completion (or max_sim_s). Deterministic for a
/// given config at any sim_jobs value. Dispatches on cfg.core.
[[nodiscard]] FacilityResult run_facility(const FacilityConfig& cfg);

/// The original round/tick loop — the executable specification the
/// event core is differentially tested against. Always available
/// regardless of cfg.core.
[[nodiscard]] FacilityResult run_facility_reference(
    const FacilityConfig& cfg);

/// Synthesize a heterogeneous facility + job mix: `nodes` total nodes
/// over `islands` partitions cycling the three node types, and
/// `job_count` jobs with catalog-flavoured synthetic work, mixed node
/// counts and a jittered arrival stream — all derived from `seed`.
[[nodiscard]] FacilityConfig make_facility_config(std::size_t nodes,
                                                  std::size_t islands,
                                                  std::size_t job_count,
                                                  std::uint64_t seed);

/// Render the island / job / cap tables.
void print_facility_report(const FacilityResult& r);

}  // namespace ear::sim
