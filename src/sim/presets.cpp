#include "sim/presets.hpp"

namespace ear::sim {

namespace {
earl::EarlSettings base() {
  earl::EarlSettings s;
  s.model = "avx512";
  s.signature_interval_s = 10.0;
  s.time_guided_period_s = 10.0;
  return s;
}
}  // namespace

earl::EarlSettings settings_no_policy() {
  earl::EarlSettings s = base();
  s.policy = "monitoring";
  return s;
}

earl::EarlSettings settings_me(double cpu_th) {
  earl::EarlSettings s = base();
  s.policy = "min_energy";
  s.policy_settings.cpu_policy_th = cpu_th;
  return s;
}

earl::EarlSettings settings_me_eufs(double cpu_th, double unc_th) {
  earl::EarlSettings s = base();
  s.policy = "min_energy_eufs";
  s.policy_settings.cpu_policy_th = cpu_th;
  s.policy_settings.unc_policy_th = unc_th;
  s.policy_settings.hw_guided_imc = true;
  return s;
}

earl::EarlSettings settings_me_ngufs(double cpu_th, double unc_th) {
  earl::EarlSettings s = base();
  s.policy = "min_energy_ngufs";
  s.policy_settings.cpu_policy_th = cpu_th;
  s.policy_settings.unc_policy_th = unc_th;
  s.policy_settings.hw_guided_imc = false;
  return s;
}

earl::EarlSettings settings_min_time(bool with_eufs, double unc_th) {
  earl::EarlSettings s = base();
  s.policy = with_eufs ? "min_time_eufs" : "min_time";
  s.policy_settings.unc_policy_th = unc_th;
  return s;
}

earl::EarlSettings settings_controller(const char* name, double th) {
  earl::EarlSettings s = base();
  s.policy = name;
  s.policy_settings.unc_policy_th = th;
  return s;
}

}  // namespace ear::sim
