#include "sim/runner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace ear::sim {

AveragedResult run_averaged(const ExperimentConfig& cfg, std::size_t runs) {
  EAR_CHECK_MSG(runs > 0, "need at least one run");
  AveragedResult avg;
  common::RunningStats time_stats;
  for (std::size_t r = 0; r < runs; ++r) {
    ExperimentConfig c = cfg;
    c.seed = cfg.seed + r * 0x9e37;
    const RunResult res = run_experiment(c);
    avg.total_time_s += res.total_time_s;
    avg.total_energy_j += res.total_energy_j;
    avg.avg_dc_power_w += res.avg_dc_power_w;
    avg.avg_pkg_power_w += res.avg_pkg_power_w;
    avg.avg_cpu_ghz += res.avg_cpu_ghz;
    avg.avg_imc_ghz += res.avg_imc_ghz;
    avg.cpi += res.cpi;
    avg.gbps += res.gbps;
    time_stats.add(res.total_time_s);
  }
  const double k = static_cast<double>(runs);
  avg.total_time_s /= k;
  avg.total_energy_j /= k;
  avg.avg_dc_power_w /= k;
  avg.avg_pkg_power_w /= k;
  avg.avg_cpu_ghz /= k;
  avg.avg_imc_ghz /= k;
  avg.cpi /= k;
  avg.gbps /= k;
  avg.time_stddev_s = time_stats.stddev();
  avg.runs = runs;
  return avg;
}

Comparison compare(const AveragedResult& reference,
                   const AveragedResult& result) {
  Comparison c;
  c.time_penalty_pct =
      common::percent_change(reference.total_time_s, result.total_time_s);
  c.power_saving_pct =
      -common::percent_change(reference.avg_dc_power_w, result.avg_dc_power_w);
  c.energy_saving_pct =
      -common::percent_change(reference.total_energy_j, result.total_energy_j);
  c.pck_power_saving_pct = -common::percent_change(reference.avg_pkg_power_w,
                                                   result.avg_pkg_power_w);
  c.gbps_penalty_pct = -common::percent_change(reference.gbps, result.gbps);
  const double edp_ref = reference.total_energy_j * reference.total_time_s;
  const double edp_res = result.total_energy_j * result.total_time_s;
  c.edp_change_pct = common::percent_change(edp_ref, edp_res);
  c.ed2p_change_pct = common::percent_change(
      edp_ref * reference.total_time_s, edp_res * result.total_time_s);
  return c;
}

}  // namespace ear::sim
