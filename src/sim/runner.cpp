#include "sim/runner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ear::sim {

ExperimentConfig config_for_run(const ExperimentConfig& cfg, std::size_t run) {
  ExperimentConfig c = cfg;
  // Mixed (not linear) derivation: seed + r*stride aliased whenever two
  // user seeds differed by a multiple of the stride, silently sharing
  // "independent" runs between campaign points.
  c.seed = common::mix_seed(cfg.seed, run);
  return c;
}

AveragedResult reduce_runs(std::span<const RunResult> runs) {
  EAR_CHECK_MSG(!runs.empty(), "need at least one run");
  AveragedResult avg;
  common::RunningStats time_stats;
  for (const RunResult& res : runs) {
    avg.total_time_s += res.total_time_s;
    avg.total_energy_j += res.total_energy_j;
    avg.avg_dc_power_w += res.avg_dc_power_w;
    avg.avg_pkg_power_w += res.avg_pkg_power_w;
    avg.avg_cpu_ghz += res.avg_cpu_ghz;
    avg.avg_imc_ghz += res.avg_imc_ghz;
    avg.cpi += res.cpi;
    avg.gbps += res.gbps;
    avg.faults += res.fault_report;
    // Cross-run aggregation goes through merge() so partial accumulators
    // (e.g. per-shard stats from a distributed campaign) reduce through
    // the exact same code path.
    common::RunningStats one;
    one.add(res.total_time_s);
    time_stats.merge(one);
  }
  const double k = static_cast<double>(runs.size());
  avg.total_time_s /= k;
  avg.total_energy_j /= k;
  avg.avg_dc_power_w /= k;
  avg.avg_pkg_power_w /= k;
  avg.avg_cpu_ghz /= k;
  avg.avg_imc_ghz /= k;
  avg.cpi /= k;
  avg.gbps /= k;
  avg.time_stddev_s = time_stats.stddev();
  avg.runs = runs.size();
  return avg;
}

AveragedResult run_averaged(const ExperimentConfig& cfg, std::size_t runs,
                            std::size_t jobs) {
  EAR_CHECK_MSG(runs > 0, "need at least one run");
  // Each run lands in its index's slot and the reduction walks the slots
  // in order, so the result is bitwise identical for any job count.
  std::vector<RunResult> results(runs);
  common::parallel_for(
      runs,
      [&](std::size_t r) { results[r] = run_experiment(config_for_run(cfg, r)); },
      jobs);
  return reduce_runs(results);
}

Comparison compare(const AveragedResult& reference,
                   const AveragedResult& result) {
  Comparison c;
  c.time_penalty_pct =
      common::percent_change(reference.total_time_s, result.total_time_s);
  c.power_saving_pct =
      -common::percent_change(reference.avg_dc_power_w, result.avg_dc_power_w);
  c.energy_saving_pct =
      -common::percent_change(reference.total_energy_j, result.total_energy_j);
  c.pck_power_saving_pct = -common::percent_change(reference.avg_pkg_power_w,
                                                   result.avg_pkg_power_w);
  // percent_change signals a zero reference with NaN; a workload that
  // reports no memory traffic (GB/s ~ 0 references exist in the CUDA
  // kernel rows) renders as "n/a" rather than a fake 0% penalty.
  c.gbps_penalty_pct = -common::percent_change(reference.gbps, result.gbps);
  const double edp_ref = reference.total_energy_j * reference.total_time_s;
  const double edp_res = result.total_energy_j * result.total_time_s;
  c.edp_change_pct = common::percent_change(edp_ref, edp_res);
  c.ed2p_change_pct = common::percent_change(
      edp_ref * reference.total_time_s, edp_res * result.total_time_s);
  return c;
}

}  // namespace ear::sim
