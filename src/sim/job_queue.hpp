// Job-admission queue for the facility tier: an arrival stream of jobs
// with per-job node counts, dispatched onto island-partitioned nodes
// with optional backfill.
//
// This generalises the campaign engine's per-(point, run) slot
// dispatcher: campaign tasks are all ready at t = 0 and each occupies
// one worker, so LPT ordering is the whole scheduling story. Facility
// jobs instead *arrive over time* and each wants a contiguous-free set
// of nodes on a single island (allocations never span islands — an
// island is a homogeneous partition and a job's demand is built for one
// node type). The queue is strictly deterministic: jobs are considered
// in (submit time, submission index) order, islands are probed in index
// order, and each allocation takes the lowest-numbered free nodes.
//
// Backfill is the aggressive first-fit flavour: when the queue head does
// not fit anywhere, later jobs that do fit may start ahead of it. With a
// finite job stream this cannot starve the head forever — running jobs
// finish, frees accumulate, and the head fits an empty island by
// construction — but it can delay it; `backfills()` counts how often
// that trade was taken. `backfill = false` degrades to strict FIFO.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/synthetic.hpp"

namespace ear::sim {

/// Per-island free-node set behind the admission scan. The original
/// representation was a sorted vector of free indices: every allocation
/// erased a prefix (shifting the whole tail) and every release re-sorted
/// the vector. This packs the island into 64-node bitmask words with a
/// lowest-live-word cursor instead: the fit probe is an O(1) count
/// compare, take() pops the k lowest-numbered free nodes straight off
/// the words, and put() re-sets bits in place — no shifting or sorting.
/// Allocation order is identical to the sorted vector's (both hand out
/// the lowest-numbered free nodes), which test_job_queue.cpp proves by
/// replaying randomised arrival streams against the old scan.
class FreeSet {
 public:
  FreeSet() = default;
  explicit FreeSet(std::size_t size);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Append the `k` lowest-numbered free nodes to `out` (ascending) and
  /// remove them from the set. Requires k <= count().
  void take(std::size_t k, std::vector<std::size_t>& out);

  /// Return nodes to the set. Double-releasing a node or releasing one
  /// past the island size is a checked error.
  void put(const std::vector<std::size_t>& nodes);

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::size_t count_ = 0;
  std::size_t cursor_ = 0;  // lowest word that may hold a set bit
};

/// One job in the facility arrival stream. The work is a single-phase
/// synthetic spec so the demand can be instantiated for whichever
/// island (node type) the job lands on.
struct FacilityJob {
  std::string name;
  std::size_t nodes = 1;   // requested node count (one island)
  double submit_s = 0.0;   // arrival time in simulated seconds
  workload::SyntheticSpec work{};
};

/// An admission decision: job -> island + island-local node indices.
struct JobStart {
  std::size_t job = 0;  // index into the submitted job list
  std::size_t island = 0;
  std::vector<std::size_t> local_nodes;
};

class JobQueue {
 public:
  /// Throws common::ConfigError when a job is wider than every island
  /// (it could never start) or requests zero nodes.
  JobQueue(std::vector<FacilityJob> jobs,
           std::vector<std::size_t> island_sizes, bool backfill = true);

  /// Admit every job that has arrived by `now_s` and fits, in arrival
  /// order. Mutates the free-node bookkeeping; call once per round with
  /// a non-decreasing clock.
  [[nodiscard]] std::vector<JobStart> admit(double now_s);

  /// Return a finished job's nodes to the island's free pool.
  void release(std::size_t island, const std::vector<std::size_t>& nodes);

  [[nodiscard]] const std::vector<FacilityJob>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] std::size_t started() const { return started_; }
  [[nodiscard]] bool all_started() const {
    return started_ == jobs_.size();
  }
  /// Jobs that had arrived but were still waiting after the last admit.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }
  /// Times a job started while an earlier-arrived job kept waiting.
  [[nodiscard]] std::size_t backfills() const { return backfills_; }
  [[nodiscard]] std::size_t free_nodes(std::size_t island) const;

 private:
  std::vector<FacilityJob> jobs_;
  std::vector<std::size_t> arrival_order_;  // job indices by (submit, id)
  std::vector<FreeSet> free_;               // per island
  std::vector<std::size_t> pending_;  // arrived, waiting (arrival order)
  std::size_t next_arrival_ = 0;      // into arrival_order_
  std::size_t started_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t backfills_ = 0;
  bool backfill_ = true;
};

}  // namespace ear::sim
