#include "sim/chaos.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/table.hpp"
#include "eargm/eargm.hpp"
#include "sim/campaign.hpp"
#include "sim/presets.hpp"
#include "workload/catalog.hpp"

namespace ear::sim {

namespace {

void check_finite(const AveragedResult& avg, const std::string& what,
                  std::vector<std::string>* violations) {
  auto bad = [&](const char* field, double v) {
    violations->push_back(what + ": " + field + " is not finite/physical");
    (void)v;
  };
  if (!std::isfinite(avg.total_time_s) || avg.total_time_s <= 0.0) {
    bad("total time", avg.total_time_s);
  }
  if (!std::isfinite(avg.total_energy_j) || avg.total_energy_j <= 0.0) {
    bad("total energy", avg.total_energy_j);
  }
  if (!std::isfinite(avg.avg_dc_power_w) || avg.avg_dc_power_w <= 0.0) {
    bad("DC power", avg.avg_dc_power_w);
  }
  if (!std::isfinite(avg.avg_cpu_ghz) || avg.avg_cpu_ghz <= 0.0) {
    bad("CPU frequency", avg.avg_cpu_ghz);
  }
}

}  // namespace

std::size_t ChaosReport::violation_count() const {
  std::size_t n = 0;
  for (const ChaosPointReport& p : points) n += p.violations.size();
  return n;
}

ChaosReport run_chaos(const ChaosOptions& opts) {
  EAR_CHECK_MSG(opts.plan != nullptr && !opts.plan->empty(),
                "chaos mode needs a non-empty fault plan");
  EAR_CHECK_MSG(!opts.policies.empty(), "chaos mode needs policies");
  EAR_CHECK_MSG(opts.runs > 0, "chaos mode needs at least one run");
  const workload::AppModel app = workload::make_app(opts.app);

  Campaign campaign(
      CampaignOptions{.jobs = opts.jobs, .capture_errors = true});
  for (const std::string& policy : opts.policies) {
    earl::EarlSettings settings = settings_me_eufs();
    settings.policy = policy;
    ExperimentConfig cfg{.app = app, .earl = settings, .seed = opts.seed};
    if (opts.budget_w) {
      cfg.eargm = eargm::EargmConfig{.cluster_budget = {*opts.budget_w}};
    }
    campaign.add("clean/" + policy, cfg, opts.runs);
    cfg.fault_plan = opts.plan;
    campaign.add("chaos/" + policy, cfg, opts.runs);
  }
  const std::vector<CampaignResult>& results = campaign.run();

  ChaosReport report;
  for (std::size_t i = 0; i < opts.policies.size(); ++i) {
    const CampaignResult& clean = results[2 * i];
    const CampaignResult& faulted = results[2 * i + 1];
    ChaosPointReport point;
    point.policy = opts.policies[i];
    point.clean = clean.avg;
    point.faulted = faulted.avg;

    // Invariant: no crash — under faults or without them.
    for (const std::string& e : clean.errors) {
      point.violations.push_back("clean run crashed: " + e);
    }
    for (const std::string& e : faulted.errors) {
      point.violations.push_back("faulted run crashed: " + e);
    }
    if (faulted.avg.runs > 0) {
      // Invariant: everything the campaign reports stays finite.
      check_finite(faulted.avg, "faulted", &point.violations);
      if (clean.avg.runs > 0) {
        point.vs_clean = compare(clean.avg, faulted.avg);
        // Invariant: bounded penalty — faults degrade, never wedge.
        if (!std::isfinite(point.vs_clean.time_penalty_pct) ||
            point.vs_clean.time_penalty_pct >
                opts.time_penalty_bound_pct) {
          point.violations.push_back(
              "time penalty " +
              common::AsciiTable::pct(point.vs_clean.time_penalty_pct) +
              " exceeds bound " +
              common::AsciiTable::pct(opts.time_penalty_bound_pct));
        }
      }
      // Invariant: settle or degrade, never go silent.
      if (faulted.avg.faults.unsettled_nodes > 0) {
        point.violations.push_back(
            std::to_string(faulted.avg.faults.unsettled_nodes) +
            " node session(s) neither settled nor degraded");
      }
    }
    report.totals += faulted.avg.faults;
    report.points.push_back(std::move(point));
  }
  return report;
}

void print_chaos_report(const ChaosReport& report) {
  common::AsciiTable table("chaos campaign");
  table.columns({"policy", "clean time", "chaos time", "penalty",
                 "energy", "injected", "detected", "recovered", "status"},
                {common::Align::kLeft, common::Align::kRight,
                 common::Align::kRight, common::Align::kRight,
                 common::Align::kRight, common::Align::kRight,
                 common::Align::kRight, common::Align::kRight,
                 common::Align::kLeft});
  for (const ChaosPointReport& p : report.points) {
    const faults::FaultReport& f = p.faulted.faults;
    table.add_row(
        {p.policy, common::AsciiTable::num(p.clean.total_time_s, 1) + "s",
         common::AsciiTable::num(p.faulted.total_time_s, 1) + "s",
         common::AsciiTable::pct(p.vs_clean.time_penalty_pct),
         common::AsciiTable::pct(-p.vs_clean.energy_saving_pct),
         std::to_string(f.injected()), std::to_string(f.detected()),
         std::to_string(f.recovered()),
         p.violations.empty()
             ? "OK"
             : std::to_string(p.violations.size()) + " violation(s)"});
  }
  table.print();

  if (report.violation_count() > 0) {
    common::AsciiTable bad("invariant violations");
    bad.columns({"policy", "violation"},
                {common::Align::kLeft, common::Align::kLeft});
    for (const ChaosPointReport& p : report.points) {
      for (const std::string& v : p.violations) bad.add_row({p.policy, v});
    }
    bad.print();
  }
}

}  // namespace ear::sim
