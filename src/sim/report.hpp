// Reporting helpers shared by the bench binaries: paper-style rows with
// "paper vs measured" annotations, and simple ASCII series for figures.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/runner.hpp"

namespace ear::sim {

/// Format "<measured> (paper <paper>)" cells for direct comparison.
[[nodiscard]] std::string vs_paper(double measured, double paper,
                                   int precision = 2);
[[nodiscard]] std::string vs_paper_pct(double measured_pct, double paper_pct,
                                       int precision = 1);

/// numerator / denominator with the zero-reference convention: a zero or
/// non-finite denominator (or non-finite numerator) has no defined ratio
/// and yields NaN, which AsciiTable::num/pct render as "n/a". Every
/// ratio column — campaign comparisons and the facility tables alike —
/// must route through this (or an equivalent NaN-producing guard)
/// instead of dividing raw and printing `nan`/`inf`.
[[nodiscard]] double safe_ratio(double numerator, double denominator);

/// A labelled series for figure-style output (penalty/saving vs x-axis).
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Render series as aligned columns (x, then one column per series).
void print_series(const std::string& title, const std::string& x_label,
                  const std::vector<Series>& series);

/// One bench's standard comparison row: config label + the five metrics.
void add_comparison_row(common::AsciiTable& table, const std::string& label,
                        const Comparison& c);

}  // namespace ear::sim
