// Experiment presets matching the paper's configurations:
//   No policy : nominal CPU frequency, hardware UFS (monitoring policy)
//   ME        : min_energy_to_solution, hardware UFS
//   ME+eU     : min_energy with explicit (HW-guided) uncore selection
//   ME+NG-U   : explicit uncore selection starting from the maximum
#pragma once

#include "earl/settings.hpp"

namespace ear::sim {

[[nodiscard]] earl::EarlSettings settings_no_policy();
[[nodiscard]] earl::EarlSettings settings_me(double cpu_th = 0.05);
[[nodiscard]] earl::EarlSettings settings_me_eufs(double cpu_th = 0.05,
                                                  double unc_th = 0.02);
[[nodiscard]] earl::EarlSettings settings_me_ngufs(double cpu_th = 0.05,
                                                   double unc_th = 0.02);
[[nodiscard]] earl::EarlSettings settings_min_time(bool with_eufs = false,
                                                   double unc_th = 0.02);
/// Controller baselines from related work (ablation benches).
[[nodiscard]] earl::EarlSettings settings_controller(const char* name,
                                                     double th = 0.02);

}  // namespace ear::sim
