// Contract macros for checked builds.
//
// EAR_CHECK (common/error.hpp) stays enabled everywhere and guards
// conditions whose violation would silently corrupt results. The macros
// here express *contracts* — preconditions (EAR_EXPECT), postconditions
// (EAR_ENSURE) and invariants (EAR_INVARIANT) — that document the API and
// are verified only in checked builds: Debug, the sanitizer CI jobs, and
// any build configured with -DEAR_CONTRACTS=ON (the default). Release
// packaging builds pass -DEAR_CONTRACTS=OFF and compile the checks down
// to nothing; callees then fall back on their documented degraded
// behaviour (clamping, saturation) instead of throwing.
//
// A violation throws common::ContractViolation (an InvariantError), so
// negative tests can assert that a contract fires.
#pragma once

#include "common/error.hpp"

// Normally injected by the build system via the EAR_CONTRACTS CMake
// option; standalone header users fall back on NDEBUG.
#if !defined(EAR_CONTRACTS_ENABLED)
#if defined(NDEBUG)
#define EAR_CONTRACTS_ENABLED 0
#else
#define EAR_CONTRACTS_ENABLED 1
#endif
#endif

namespace ear::common {

/// True when contract checks are compiled in. Tests use this to skip
/// negative contract tests in builds that compile the checks out.
[[nodiscard]] constexpr bool contracts_enabled() {
  return EAR_CONTRACTS_ENABLED != 0;
}

namespace detail {
[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg) {
  throw ContractViolation(std::string(kind) + " violated: " + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace ear::common

#if EAR_CONTRACTS_ENABLED
#define EAR_CONTRACT_IMPL_(kind, expr, msg)                               \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ear::common::detail::contract_failed(kind, #expr, __FILE__,       \
                                             __LINE__, (msg));            \
  } while (false)
#else
// Parse but never evaluate the condition, so disabling contracts cannot
// change which expressions compile.
#define EAR_CONTRACT_IMPL_(kind, expr, msg) \
  do {                                      \
    (void)sizeof(!(expr));                  \
  } while (false)
#endif

/// Precondition: the caller handed us arguments that satisfy the API.
#define EAR_EXPECT(expr) EAR_CONTRACT_IMPL_("precondition", expr, "")
#define EAR_EXPECT_MSG(expr, msg) EAR_CONTRACT_IMPL_("precondition", expr, (msg))

/// Postcondition: what we computed is well-formed before returning it.
#define EAR_ENSURE(expr) EAR_CONTRACT_IMPL_("postcondition", expr, "")
#define EAR_ENSURE_MSG(expr, msg) EAR_CONTRACT_IMPL_("postcondition", expr, (msg))

/// Invariant: internal state is consistent between operations.
#define EAR_INVARIANT(expr) EAR_CONTRACT_IMPL_("invariant", expr, "")
#define EAR_INVARIANT_MSG(expr, msg) \
  EAR_CONTRACT_IMPL_("invariant", expr, (msg))

/// Marks control flow that must never execute. Active in every build:
/// reaching it means the surrounding state machine is broken, and there
/// is no sensible degraded behaviour to fall back on.
#define EAR_UNREACHABLE(msg)                                              \
  ::ear::common::detail::contract_failed("unreachable", "control reached", \
                                         __FILE__, __LINE__, (msg))

// ---------------------------------------------------------------------------
// Shard-ownership annotations (checked by `ear_lint --deep`).
//
// These expand to nothing — they are declarations of concurrency
// discipline, placed immediately before a variable declaration, that
// the whole-program shard-ownership pass enforces statically:
//
//   EAR_SHARD_LOCAL      per-slot ownership: inside a parallel region
//                        the variable may only be mutated through a
//                        subscript (each task owns its own slot), never
//                        as a whole container.
//   EAR_GUARDED_BY(mu)   mutations inside a parallel region must be
//                        lexically covered by a lock_guard/unique_lock/
//                        scoped_lock on `mu`.
//   EAR_REDUCED_SERIAL   never mutated inside a parallel region; the
//                        reduction/merge happens serially after the
//                        parallel phase, which is what keeps it bitwise
//                        deterministic.
//
// Keeping them as real macros (not comments) means the annotation is a
// token the linter sees after preprocessing-agnostic tokenisation, and
// that the compiler verifies the spelling exists.
// ---------------------------------------------------------------------------
#define EAR_SHARD_LOCAL
#define EAR_GUARDED_BY(mu)
#define EAR_REDUCED_SERIAL
