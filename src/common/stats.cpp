#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace ear::common {

void RunningStats::add(double x) { add_weighted(x, 1.0); }

void RunningStats::add_weighted(double x, double weight) {
  EAR_CHECK_MSG(weight > 0.0, "weights must be positive");
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  w_ += weight;
  const double delta = x - mean_;
  mean_ += delta * (weight / w_);
  m2_ += weight * delta * (x - mean_);
}

double RunningStats::variance() const {
  return w_ > 0.0 ? m2_ / w_ : 0.0;  // population variance
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double w = w_ + other.w_;
  const double delta = other.mean_ - mean_;
  const double mean = mean_ + delta * (other.w_ / w);
  m2_ += other.m2_ + delta * delta * (w_ * other.w_ / w);
  mean_ = mean;
  w_ = w;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double relative_change(double reference, double value) {
  // A zero reference has no meaningful relative change; returning 0.0
  // here used to report "no change" for *any* value. NaN is a signalled
  // sentinel the formatting layer renders as "n/a".
  if (reference == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return (value - reference) / reference;
}

double percent_change(double reference, double value) {
  return 100.0 * relative_change(reference, value);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

std::vector<double> least_squares(
    const std::vector<std::vector<double>>& rows, std::span<const double> y) {
  EAR_CHECK(rows.size() == y.size());
  EAR_CHECK(!rows.empty());
  const std::size_t k = rows.front().size();
  EAR_CHECK_MSG(rows.size() >= k, "underdetermined least-squares system");

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<std::vector<double>> a(k, std::vector<double>(k + 1, 0.0));
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const auto& row = rows[s];
    EAR_CHECK(row.size() == k);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) a[i][j] += row[i] * row[j];
      a[i][k] += row[i] * y[s];
    }
  }

  // Gaussian elimination with partial pivoting on the augmented matrix.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw ConfigError("least_squares: singular normal equations");
    }
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= k; ++c) a[r][c] -= factor * a[col][c];
    }
  }

  std::vector<double> beta(k);
  for (std::size_t i = 0; i < k; ++i) beta[i] = a[i][k] / a[i][i];
  return beta;
}

}  // namespace ear::common
