// Minimal parallel-execution layer for the campaign engine: a persistent
// ThreadPool plus a parallel_for that fans loop iterations out over a
// shared atomic index (dynamic balancing — long experiment points don't
// leave the other workers idle behind a static partition).
//
// Job-count resolution order: explicit argument > EAR_SIM_JOBS env var >
// std::thread::hardware_concurrency(). Everything degrades to serial
// execution for jobs <= 1, so callers need no special casing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ear::common {

/// Jobs to use when the caller does not say: EAR_SIM_JOBS if set to a
/// positive integer, else the hardware concurrency (at least 1).
[[nodiscard]] std::size_t default_jobs();

/// Resolve a user-supplied job count: 0 means "use default_jobs()".
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested);

/// Fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = default_jobs()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; it may start immediately on any worker.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for drain
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run body(i) for every i in [0, n) on up to `jobs` threads (0 = auto).
/// Iterations are claimed dynamically from a shared counter in chunks of
/// `grain` (0 behaves as 1); a grain above 1 amortises the atomic claim
/// over cheap iterations while keeping the balancing dynamic. The calling
/// thread participates, so jobs <= 1 is exactly a serial loop. The first
/// exception thrown by any iteration is rethrown on the caller after all
/// workers stop.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t jobs = 0, std::size_t grain = 1);

}  // namespace ear::common
