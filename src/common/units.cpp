#include "common/units.hpp"

#include <cstdio>

namespace ear::common {

std::string Freq::str() const {
  char buf[32];
  if (khz_ >= 1'000'000 || khz_ % 1000 != 0) {
    std::snprintf(buf, sizeof buf, "%.2fGHz", as_ghz());
  } else {
    std::snprintf(buf, sizeof buf, "%lluMHz",
                  static_cast<unsigned long long>(as_mhz()));
  }
  return buf;
}

}  // namespace ear::common
