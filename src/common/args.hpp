// Minimal command-line argument parser for the tools and examples:
// positional arguments plus --key=value / --key value / --flag options,
// with typed accessors and defaults. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ear::common {

class ArgParser {
 public:
  /// Parse argv (argv[0] is skipped). Throws ConfigError on malformed
  /// options ("--=x") or on repeated option names.
  ///
  /// Value options accept both "--key=value" and "--key value". Because
  /// "--flag positional" is ambiguous with the space form, options named
  /// in `flags` never consume a following token.
  ArgParser(int argc, const char* const* argv,
            std::set<std::string> flags = {});

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] std::string positional_or(std::size_t index,
                                          const std::string& def) const;

  [[nodiscard]] bool has(const std::string& name) const;
  /// Flag given without a value ("--verbose").
  [[nodiscard]] bool flag(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] double get(const std::string& name, double def) const;
  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t def) const;

  /// Names of all options seen (for unknown-option checks).
  [[nodiscard]] std::vector<std::string> option_names() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // "" = bare flag
};

}  // namespace ear::common
