#include "common/table.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ear::common {

void AsciiTable::columns(std::vector<std::string> names,
                         std::vector<Align> aligns) {
  EAR_CHECK_MSG(rows_.empty(), "columns() must precede add_row()");
  header_ = std::move(names);
  if (aligns.empty()) {
    aligns_.assign(header_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_.front() = Align::kLeft;
  } else {
    EAR_CHECK(aligns.size() == header_.size());
    aligns_ = std::move(aligns);
  }
}

void AsciiTable::add_row(std::vector<std::string> fields) {
  EAR_CHECK_MSG(fields.size() == header_.size(),
                "row width must match header");
  rows_.push_back({std::move(fields), false});
}

void AsciiTable::add_separator() {
  if (!rows_.empty()) rows_.back().separator = true;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.fields.size(); ++c) {
      widths[c] = std::max(widths[c], r.fields[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& fields) {
    std::string s = "|";
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const auto& f = fields[c];
      const std::size_t pad = widths[c] - f.size();
      if (aligns_[c] == Align::kLeft) {
        s += " " + f + std::string(pad, ' ') + " |";
      } else {
        s += " " + std::string(pad, ' ') + f + " |";
      }
    }
    s += '\n';
    return s;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += hline();
  out += line(header_);
  out += hline();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += line(rows_[i].fields);
    // The closing rule below covers a trailing separator.
    if (rows_[i].separator && i + 1 < rows_.size()) out += hline();
  }
  out += hline();
  return out;
}

void AsciiTable::print(std::FILE* out) const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string AsciiTable::num(double v, int precision) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::pct(double v, int precision) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, v);
  return buf;
}

std::string AsciiTable::ghz(double v) { return num(v, 2); }

}  // namespace ear::common
