// Deterministic pseudo-random number generation for reproducible
// experiments. SplitMix64 for seeding, xoshiro256** as the workhorse —
// fast, high quality, and the sequence is identical across platforms
// (unlike std::default_random_engine / distributions).
#pragma once

#include <cstdint>

namespace ear::common {

/// SplitMix64: used to expand a single user seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Collision-resistant derivation of a per-run seed from a user seed and
/// a run index. A linear rule (seed + r*stride) aliases whenever two user
/// seeds differ by a multiple of the stride; mixing each input through
/// the full SplitMix64 finalizer first destroys that arithmetic
/// structure, so distinct (seed, run) pairs get unrelated streams.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t run) {
  SplitMix64 a(seed);
  SplitMix64 b(a.next() ^ (run + 0x9e3779b97f4a7c15ULL));
  return b.next();
}

/// xoshiro256** generator with convenience floating-point draws.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Approximately standard normal draw (sum of 12 uniforms, Irwin-Hall).
  /// Plenty for run-to-run measurement noise; avoids libm divergence.
  constexpr double normal() {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return acc - 6.0;
  }

  /// Normal draw with given mean and standard deviation.
  constexpr double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t below(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace ear::common
