// Fixed-width ASCII table rendering used by the bench harness to print
// paper-style tables (rows/series in the same layout the paper reports).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ear::common {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  /// Define the header; must be called before adding rows.
  void columns(std::vector<std::string> names,
               std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> fields);
  /// Insert a horizontal separator after the last added row.
  void add_separator();

  [[nodiscard]] std::string render() const;
  void print(std::FILE* out = stdout) const;

  /// Numeric cell helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 2);  // "+3.25%"
  static std::string ghz(double v);                     // "2.40"

 private:
  struct Row {
    std::vector<std::string> fields;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace ear::common
