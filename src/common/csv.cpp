#include "common/csv.hpp"

#include <charconv>
#include <cstdio>

namespace ear::common {

std::string exact_double(double v) {
  // Shortest round-trip form; 32 bytes covers the longest double
  // representation ("-2.2250738585072014e-308" is 24 chars).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

bool parse_exact_double(std::string_view s, double* out) {
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << escape(f);
  }
  *out_ << '\n';
}

std::string CsvWriter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ear::common
