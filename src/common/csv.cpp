#include "common/csv.hpp"

#include <cstdio>

namespace ear::common {

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << escape(f);
  }
  *out_ << '\n';
}

std::string CsvWriter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ear::common
