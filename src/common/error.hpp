// Error handling helpers.
//
// The library uses exceptions for programmer errors and unrecoverable
// configuration problems (Core Guidelines E.2): simulation code is not on a
// hot path where exception cost matters, and a misconfigured experiment
// should fail loudly rather than produce silently wrong tables.
#pragma once

#include <stdexcept>
#include <string>

namespace ear::common {

/// Thrown when an experiment, workload or hardware description is invalid.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on violation of an internal invariant (a bug in the library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown by the contract macros (common/contracts.hpp) in checked builds.
/// Derives from InvariantError so callers that already handle invariant
/// failures keep working unchanged.
class ContractViolation : public InvariantError {
 public:
  explicit ContractViolation(const std::string& what) : InvariantError(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InvariantError(std::string("EAR_CHECK failed: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace ear::common

/// Invariant check that stays enabled in release builds; simulation
/// correctness matters more than the branch cost.
#define EAR_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ear::common::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (false)

#define EAR_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ear::common::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
