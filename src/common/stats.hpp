// Small statistics helpers used by signature accumulation, run averaging
// and the model-learning least-squares fits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ear::common {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  /// Weighted sample (weight must be > 0), e.g. time-weighted power.
  void add_weighted(double x, double weight);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double total_weight() const { return w_; }
  [[nodiscard]] double mean() const { return w_ > 0.0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * w_; }

  /// Merge another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double w_ = 0.0;     // total weight
  double mean_ = 0.0;  // weighted mean
  double m2_ = 0.0;    // weighted sum of squared deviations
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Relative change (new - ref) / ref. A zero reference yields quiet NaN:
/// "X% of nothing" is undefined, and the old silent-0.0 answer hid real
/// regressions behind a fake "no change".
[[nodiscard]] double relative_change(double reference, double value);

/// Relative change expressed in percent (NaN when reference == 0).
[[nodiscard]] double percent_change(double reference, double value);

/// Arithmetic mean of a sequence; 0 for empty input.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Ordinary least squares for y ~ X*beta (X in row-major, each row one
/// sample). Solves the normal equations with Gaussian elimination and
/// partial pivoting; suitable for the small (<=4 coefficient) fits the
/// model-learning phase needs. Throws ConfigError on singular systems.
[[nodiscard]] std::vector<double> least_squares(
    const std::vector<std::vector<double>>& rows,
    std::span<const double> y);

}  // namespace ear::common
