// Minimal CSV writer for experiment result persistence. Fields containing
// separators or quotes are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ear::common {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 4);

 private:
  static std::string escape(std::string_view field);
  std::ostream* out_;
};

}  // namespace ear::common
