// Minimal CSV writer for experiment result persistence. Fields containing
// separators or quotes are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ear::common {

/// Shortest decimal string that round-trips to exactly `v`
/// (std::to_chars): locale-independent, full precision. Non-finite
/// values render as "nan"/"-nan"/"inf"/"-inf", which parse_exact_double
/// (and strtod) read back. Serialisation surfaces — CSV exports, JSON
/// summaries, trajectory files — must use this instead of fixed-precision
/// printf formatting, which silently truncates and is locale-dependent.
[[nodiscard]] std::string exact_double(double v);

/// Parse a double produced by exact_double (std::from_chars, accepts
/// nan/inf spellings). Returns false on empty input or trailing garbage.
[[nodiscard]] bool parse_exact_double(std::string_view s, double* out);

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 4);

 private:
  static std::string escape(std::string_view field);
  std::ostream* out_;
};

}  // namespace ear::common
