#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace ear::common {

std::size_t default_jobs() {
  if (const char* env = std::getenv("EAR_SIM_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_jobs(std::size_t requested) {
  return requested > 0 ? requested : default_jobs();
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_jobs(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t jobs, std::size_t grain) {
  const std::size_t threads = std::min(resolve_jobs(jobs), n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t step = grain == 0 ? 1 : grain;

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const std::size_t begin =
          next.fetch_add(step, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + step, n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!first_error) first_error = std::current_exception();
          }
          next.store(n, std::memory_order_relaxed);  // stop claiming work
          return;
        }
      }
    }
  };

  std::vector<std::thread> helpers;
  helpers.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) helpers.emplace_back(drain);
  drain();  // the caller works too
  for (auto& h : helpers) h.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ear::common
