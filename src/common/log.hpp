// Leveled logging to stderr. Off (kWarn) by default so tests and benches
// stay quiet; EARL verbose tracing can be enabled per-experiment.
#pragma once

#include <cstdarg>

namespace ear::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. `tag` identifies the subsystem ("earl", "policy"...).
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace ear::common

#define EAR_LOG_DEBUG(tag, ...) \
  ::ear::common::logf(::ear::common::LogLevel::kDebug, (tag), __VA_ARGS__)
#define EAR_LOG_INFO(tag, ...) \
  ::ear::common::logf(::ear::common::LogLevel::kInfo, (tag), __VA_ARGS__)
#define EAR_LOG_WARN(tag, ...) \
  ::ear::common::logf(::ear::common::LogLevel::kWarn, (tag), __VA_ARGS__)
#define EAR_LOG_ERROR(tag, ...) \
  ::ear::common::logf(::ear::common::LogLevel::kError, (tag), __VA_ARGS__)
