#include "common/args.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace ear::common {

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::set<std::string> flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      throw ConfigError("bare '--' is not a valid option");
    }
    const auto eq = body.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // "--key value" form: consume the next token unless this option is
      // a declared flag or the next token is itself an option.
      if (flags.count(name) == 0 && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
    }
    if (name.empty()) throw ConfigError("malformed option: " + arg);
    if (options_.count(name) != 0) {
      throw ConfigError("repeated option: --" + name);
    }
    options_[name] = value;
  }
}

std::string ArgParser::positional_or(std::size_t index,
                                     const std::string& def) const {
  return index < positional_.size() ? positional_[index] : def;
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) != 0;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = options_.find(name);
  return it != options_.end() && it->second.empty();
}

std::string ArgParser::get(const std::string& name,
                           const std::string& def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

double ArgParser::get(const std::string& name, double def) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw ConfigError("option --" + name + " expects a number, got '" +
                      it->second + "'");
  }
  return v;
}

std::int64_t ArgParser::get(const std::string& name, std::int64_t def) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw ConfigError("option --" + name + " expects an integer, got '" +
                      it->second + "'");
  }
  return static_cast<std::int64_t>(v);
}

std::vector<std::string> ArgParser::option_names() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [k, v] : options_) out.push_back(k);
  return out;
}

}  // namespace ear::common
