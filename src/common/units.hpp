// Strong unit types used throughout the library.
//
// Frequencies are stored as integral kHz (the granularity the Linux cpufreq
// and MSR interfaces use); power/energy/time as double-precision SI values.
// The types are deliberately tiny value types: no virtuals, trivially
// copyable, and only the arithmetic that is physically meaningful
// (Energy = Power * Time, etc.) is provided.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/contracts.hpp"

namespace ear::common {

/// CPU or uncore clock frequency. Internally kHz so that 100 MHz P-state
/// steps are exact integers.
class Freq {
 public:
  constexpr Freq() = default;
  static constexpr Freq khz(std::uint64_t v) { return Freq{v}; }
  static constexpr Freq mhz(std::uint64_t v) { return Freq{v * 1000}; }
  static constexpr Freq ghz(double v) {
    return Freq{static_cast<std::uint64_t>(v * 1'000'000.0 + 0.5)};
  }

  [[nodiscard]] constexpr std::uint64_t as_khz() const { return khz_; }
  [[nodiscard]] constexpr std::uint64_t as_mhz() const { return khz_ / 1000; }
  [[nodiscard]] constexpr double as_ghz() const {
    return static_cast<double>(khz_) / 1'000'000.0;
  }
  /// Cycles per second, for time computations.
  [[nodiscard]] constexpr double as_hz() const {
    return static_cast<double>(khz_) * 1000.0;
  }
  [[nodiscard]] constexpr bool is_zero() const { return khz_ == 0; }

  friend constexpr auto operator<=>(Freq a, Freq b) = default;
  friend constexpr Freq operator+(Freq a, Freq b) { return Freq{a.khz_ + b.khz_}; }
  /// Subtracting a larger frequency is a precondition violation in
  /// checked builds (EAR_CONTRACTS=ON, the default). When contracts are
  /// compiled out (Release packaging) the result saturates at 0 kHz —
  /// the historical behaviour — rather than wrapping the unsigned value.
  friend constexpr Freq operator-(Freq a, Freq b) {
    EAR_EXPECT_MSG(a.khz_ >= b.khz_, "Freq subtraction underflow");
    return Freq{a.khz_ >= b.khz_ ? a.khz_ - b.khz_ : 0};
  }

  /// Ratio of two frequencies (dimensionless), e.g. for DVFS scaling laws.
  [[nodiscard]] constexpr double ratio_to(Freq other) const {
    return other.khz_ == 0 ? 0.0
                           : static_cast<double>(khz_) /
                                 static_cast<double>(other.khz_);
  }

  [[nodiscard]] std::string str() const;

 private:
  constexpr explicit Freq(std::uint64_t khz) : khz_(khz) {}
  std::uint64_t khz_ = 0;
};

/// Instantaneous power in watts.
struct Watts {
  double value = 0.0;
  friend constexpr auto operator<=>(Watts a, Watts b) = default;
  friend constexpr Watts operator+(Watts a, Watts b) { return {a.value + b.value}; }
  friend constexpr Watts operator-(Watts a, Watts b) { return {a.value - b.value}; }
  constexpr Watts& operator+=(Watts o) { value += o.value; return *this; }
  /// Margin/share scaling: budgets are multiplied by dimensionless
  /// ratios (trigger margin, floor share) all over the control plane.
  friend constexpr Watts operator*(Watts p, double k) { return {p.value * k}; }
  friend constexpr Watts operator*(double k, Watts p) { return {p.value * k}; }
  friend constexpr Watts operator/(Watts p, double k) { return {p.value / k}; }
};

/// Time duration in seconds (simulated time).
struct Secs {
  double value = 0.0;
  friend constexpr auto operator<=>(Secs a, Secs b) = default;
  friend constexpr Secs operator+(Secs a, Secs b) { return {a.value + b.value}; }
  friend constexpr Secs operator-(Secs a, Secs b) { return {a.value - b.value}; }
  constexpr Secs& operator+=(Secs o) { value += o.value; return *this; }
};

/// Accumulated energy in joules.
struct Joules {
  double value = 0.0;
  friend constexpr auto operator<=>(Joules a, Joules b) = default;
  friend constexpr Joules operator+(Joules a, Joules b) { return {a.value + b.value}; }
  friend constexpr Joules operator-(Joules a, Joules b) { return {a.value - b.value}; }
  constexpr Joules& operator+=(Joules o) { value += o.value; return *this; }
};

constexpr Joules operator*(Watts p, Secs t) { return {p.value * t.value}; }
constexpr Joules operator*(Secs t, Watts p) { return p * t; }
/// Average power over an interval.
constexpr Watts operator/(Joules e, Secs t) {
  return {t.value > 0.0 ? e.value / t.value : 0.0};
}

/// API-boundary vocabulary for the ear_lint raw-power-scalar rule: a
/// budget, cap or instantaneous reading crossing a public interface is
/// a Power; an accumulated quantity is an Energy. Aliases of the SI
/// carrier types so arithmetic (Power * Secs = Energy, ...) is shared.
using Power = Watts;
using Energy = Joules;

/// Memory traffic rate in GB/s (decimal GB, as the paper reports).
struct GBps {
  double value = 0.0;
  friend constexpr auto operator<=>(GBps a, GBps b) = default;
};

}  // namespace ear::common
