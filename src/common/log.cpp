#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace ear::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[%s] %s: ", level_name(level), tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace ear::common
