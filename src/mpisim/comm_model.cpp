#include "mpisim/comm_model.hpp"

#include <cmath>

namespace ear::mpisim {

double CommModel::p2p_seconds(std::size_t bytes) const {
  return params_.alpha_latency_s +
         static_cast<double>(bytes) * params_.beta_s_per_byte;
}

double CommModel::allreduce_seconds(std::size_t ranks,
                                    std::size_t bytes) const {
  if (ranks <= 1) return 0.0;
  const double rounds =
      std::ceil(std::log2(static_cast<double>(ranks))) *
      params_.allreduce_log_factor;
  return rounds * p2p_seconds(bytes);
}

double CommModel::barrier_seconds(std::size_t ranks) const {
  return allreduce_seconds(ranks, 8);
}

}  // namespace ear::mpisim
