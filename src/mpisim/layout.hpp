// Process layout: how an application's MPI ranks map onto cluster nodes.
// EARL runs one instance per node and designates the lowest-numbered local
// rank as the node master (the one whose events drive loop detection).
#pragma once

#include <cstddef>
#include <vector>

namespace ear::mpisim {

class ProcessLayout {
 public:
  /// Block distribution: ranks_per_node consecutive ranks per node.
  ProcessLayout(std::size_t nodes, std::size_t ranks_per_node);

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t ranks_per_node() const { return rpn_; }
  [[nodiscard]] std::size_t total_ranks() const { return nodes_ * rpn_; }

  [[nodiscard]] std::size_t node_of_rank(std::size_t rank) const;
  /// Node-master rank of a node (lowest local rank).
  [[nodiscard]] std::size_t master_rank(std::size_t node) const;
  [[nodiscard]] bool is_master(std::size_t rank) const;
  [[nodiscard]] std::vector<std::size_t> ranks_on_node(
      std::size_t node) const;

 private:
  std::size_t nodes_;
  std::size_t rpn_;
};

}  // namespace ear::mpisim
