// MPI call events as a PMPI interposer would see them: one event per MPI
// call, identified by a hash of (call type, buffer size class, call site).
// EAR's DynAIS consumes exactly this stream to find the outer loop.
#pragma once

#include <cstdint>

namespace ear::mpisim {

/// Event identifier; equal ids mean "the same MPI call from the same call
/// site with the same argument signature".
using EventId = std::uint32_t;

/// A handful of well-known synthetic ids for building patterns in tests.
inline constexpr EventId kBarrier = 1;
inline constexpr EventId kAllreduce = 2;
inline constexpr EventId kSendRecv = 3;
inline constexpr EventId kWaitall = 4;

}  // namespace ear::mpisim
