#include "mpisim/layout.hpp"

#include "common/error.hpp"

namespace ear::mpisim {

ProcessLayout::ProcessLayout(std::size_t nodes, std::size_t ranks_per_node)
    : nodes_(nodes), rpn_(ranks_per_node) {
  EAR_CHECK_MSG(nodes > 0 && ranks_per_node > 0,
                "layout needs at least one node and one rank per node");
}

std::size_t ProcessLayout::node_of_rank(std::size_t rank) const {
  EAR_CHECK(rank < total_ranks());
  return rank / rpn_;
}

std::size_t ProcessLayout::master_rank(std::size_t node) const {
  EAR_CHECK(node < nodes_);
  return node * rpn_;
}

bool ProcessLayout::is_master(std::size_t rank) const {
  return rank % rpn_ == 0;
}

std::vector<std::size_t> ProcessLayout::ranks_on_node(
    std::size_t node) const {
  EAR_CHECK(node < nodes_);
  std::vector<std::size_t> out;
  out.reserve(rpn_);
  for (std::size_t r = node * rpn_; r < (node + 1) * rpn_; ++r) {
    out.push_back(r);
  }
  return out;
}

}  // namespace ear::mpisim
