// Alpha-beta communication cost model. The calibrated catalog apps carry
// their measured communication share directly; this model supports
// what-if analyses (node-count scaling in the examples) and synthetic MPI
// patterns in tests.
#pragma once

#include <cstddef>

namespace ear::mpisim {

struct CommParams {
  double alpha_latency_s = 2.0e-6;   // per-message latency
  double beta_s_per_byte = 1.0 / 12.5e9;  // 100 Gb/s link
  double allreduce_log_factor = 1.0;      // tree-based collectives
};

class CommModel {
 public:
  explicit CommModel(CommParams params = {}) : params_(params) {}

  /// Point-to-point message time.
  [[nodiscard]] double p2p_seconds(std::size_t bytes) const;
  /// Allreduce across `ranks` ranks of `bytes` payload (tree model).
  [[nodiscard]] double allreduce_seconds(std::size_t ranks,
                                         std::size_t bytes) const;
  /// Barrier across `ranks`.
  [[nodiscard]] double barrier_seconds(std::size_t ranks) const;

 private:
  CommParams params_;
};

}  // namespace ear::mpisim
