// Coefficient persistence. Real EAR runs the learning phase once per
// architecture at installation time and ships the resulting coefficient
// files with the cluster configuration; EARL loads them at job start.
// The text format is versioned and human-inspectable:
//
//   ear-coefficients v1
//   pstates 16
//   <from> <to> <A> <B> <C> <D> <E> <F>
//   ...
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "models/coefficients.hpp"

namespace ear::models {

/// Serialise a coefficient table (all available off-diagonal entries).
void save_coefficients(const CoefficientTable& table, std::ostream& out);

/// Parse a table previously written by save_coefficients. Throws
/// ConfigError on malformed input, unknown versions, or out-of-range
/// indices.
[[nodiscard]] std::shared_ptr<CoefficientTable> load_coefficients(
    std::istream& in);

/// File-path convenience wrappers.
void save_coefficients_file(const CoefficientTable& table,
                            const std::string& path);
[[nodiscard]] std::shared_ptr<CoefficientTable> load_coefficients_file(
    const std::string& path);

}  // namespace ear::models
