#include "models/learning.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "metrics/accumulator.hpp"
#include "simhw/node.hpp"
#include "workload/synthetic.hpp"

namespace ear::models {

namespace {

metrics::Signature measure(const simhw::NodeConfig& cfg,
                           const simhw::WorkDemand& demand,
                           simhw::Pstate pstate, std::size_t iterations,
                           std::uint64_t seed) {
  // Noise-free node: learning wants the clean response surface.
  simhw::SimNode node(cfg, seed,
                      simhw::NoiseModel{.time_sigma = 0.0, .power_sigma = 0.0});
  node.set_cpu_pstate(pstate);
  // One warm-up iteration lets the HW UFS governor settle on its target
  // before the measurement window opens.
  node.execute_iteration(demand);
  const auto begin = metrics::Snapshot::take(node);
  for (std::size_t i = 0; i < iterations; ++i) node.execute_iteration(demand);
  return metrics::compute_signature(begin, metrics::Snapshot::take(node),
                                    iterations);
}

}  // namespace

LearnedModels learn_models(const simhw::NodeConfig& cfg,
                           const LearningOptions& opts) {
  const auto suite = workload::learning_suite();
  const std::size_t num_p = cfg.pstates.size();
  EAR_CHECK_MSG(!suite.empty(), "empty learning suite");

  // signatures[w * num_p + p]
  std::vector<metrics::Signature> sigs(suite.size() * num_p);
  for (std::size_t w = 0; w < suite.size(); ++w) {
    workload::SyntheticSpec spec = suite[w];
    // The suite is sized for the main testbed; smaller nodes (the GPU
    // node's 32 cores) use all the cores they have.
    spec.active_cores = std::min(spec.active_cores, cfg.total_cores());
    const auto demand = workload::make_demand(cfg, spec);
    for (std::size_t p = 0; p < num_p; ++p) {
      sigs[w * num_p + p] = measure(cfg, demand, p,
                                    opts.iterations_per_sample,
                                    opts.seed + w * 131 + p);
      EAR_CHECK_MSG(sigs[w * num_p + p].valid,
                    "learning sample produced an invalid signature");
    }
  }

  auto table = std::make_shared<CoefficientTable>(num_p);
  for (std::size_t from = 0; from < num_p; ++from) {
    for (std::size_t to = 0; to < num_p; ++to) {
      if (from == to) continue;  // identity preset by the table
      std::vector<std::vector<double>> rows_p, rows_c;
      std::vector<double> y_p, y_c;
      rows_p.reserve(suite.size());
      rows_c.reserve(suite.size());
      for (std::size_t w = 0; w < suite.size(); ++w) {
        const auto& sf = sigs[w * num_p + from];
        const auto& st = sigs[w * num_p + to];
        rows_p.push_back({sf.dc_power_w, sf.tpi, 1.0});
        y_p.push_back(st.dc_power_w);
        rows_c.push_back({sf.cpi, sf.tpi, 1.0});
        y_c.push_back(st.cpi);
      }
      const auto beta_p = common::least_squares(rows_p, y_p);
      const auto beta_c = common::least_squares(rows_c, y_c);
      table->set(from, to,
                 Coefficients{.a = beta_p[0], .b = beta_p[1], .c = beta_p[2],
                              .d = beta_c[0], .e = beta_c[1], .f = beta_c[2],
                              .available = true});
    }
  }

  LearnedModels out;
  out.coefficients = table;
  out.basic = std::make_shared<BasicModel>(cfg.pstates, table);
  out.avx512 = std::make_shared<Avx512Model>(out.basic);
  return out;
}

EnergyModelPtr model_by_name(const LearnedModels& learned,
                             const std::string& name) {
  if (name == "basic") return learned.basic;
  if (name == "avx512") return learned.avx512;
  throw common::ConfigError("unknown energy model: " + name);
}

}  // namespace ear::models
