// Energy model API: project a signature measured at one P-state to the
// time and power the application would exhibit at another P-state. This
// is what lets EARL pick a frequency after a few seconds of execution
// instead of exhaustively trying every P-state.
#pragma once

#include <memory>
#include <string>

#include "metrics/signature.hpp"
#include "simhw/pstate.hpp"

namespace ear::models {

using simhw::Pstate;

/// A projected operating point.
struct Prediction {
  double time_s = 0.0;   // per-iteration time at the target P-state
  double power_w = 0.0;  // average DC node power at the target P-state
  double cpi = 0.0;      // projected CPI (diagnostic)

  [[nodiscard]] double energy_j() const { return time_s * power_w; }
};

/// Interface implemented by all models (the plugin surface; EAR loads
/// these as shared objects, we register factories — see model_registry).
class EnergyModel {
 public:
  virtual ~EnergyModel() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Project `sig`, measured with the CPU at `from`, onto P-state `to`.
  [[nodiscard]] virtual Prediction predict(const metrics::Signature& sig,
                                           Pstate from, Pstate to) const = 0;
};

using EnergyModelPtr = std::shared_ptr<const EnergyModel>;

}  // namespace ear::models
