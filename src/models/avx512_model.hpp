// The paper's AVX512-aware model (§V-A): because AVX512 execution is
// licence-capped (2.2 GHz all-core on the 6148), requesting a higher clock
// buys nothing for the vector fraction of the code. The model therefore
// blends two basic-model predictions — one at the requested target P-state
// and one at the AVX512-capped P-state — weighted by the measured VPI.
#pragma once

#include <memory>

#include "models/basic_model.hpp"

namespace ear::models {

class Avx512Model : public EnergyModel {
 public:
  explicit Avx512Model(std::shared_ptr<const BasicModel> base);

  [[nodiscard]] std::string name() const override { return "avx512"; }
  [[nodiscard]] Prediction predict(const metrics::Signature& sig,
                                   Pstate from, Pstate to) const override;

 private:
  std::shared_ptr<const BasicModel> base_;
  Pstate avx512_pstate_;
};

}  // namespace ear::models
