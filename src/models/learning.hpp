// The EAR learning phase: characterise an architecture by running a grid
// of synthetic kernels at every P-state on the (simulated) node and
// fitting the projection coefficients by least squares. Real EAR does
// exactly this once per architecture at installation time; the paper's
// policies then use the resulting tables at runtime.
#pragma once

#include <cstdint>
#include <memory>

#include "models/avx512_model.hpp"
#include "models/basic_model.hpp"
#include "simhw/config.hpp"

namespace ear::models {

struct LearnedModels {
  std::shared_ptr<const CoefficientTable> coefficients;
  std::shared_ptr<const BasicModel> basic;
  std::shared_ptr<const Avx512Model> avx512;
};

struct LearningOptions {
  std::size_t iterations_per_sample = 10;  // per workload x pstate
  std::uint64_t seed = 0x1ea12;
};

/// Run the learning phase for `cfg` and fit the coefficient table.
[[nodiscard]] LearnedModels learn_models(const simhw::NodeConfig& cfg,
                                         const LearningOptions& opts = {});

/// Name-based model selection over a learned set (the plugin mechanism's
/// moral equivalent: policies name their model, EARL resolves it).
[[nodiscard]] EnergyModelPtr model_by_name(const LearnedModels& learned,
                                           const std::string& name);

}  // namespace ear::models
