#include "models/avx512_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ear::models {

Avx512Model::Avx512Model(std::shared_ptr<const BasicModel> base)
    : base_(std::move(base)) {
  EAR_CHECK_MSG(base_ != nullptr, "base model required");
  avx512_pstate_ = base_->pstates().avx512_pstate();
}

Prediction Avx512Model::predict(const metrics::Signature& sig, Pstate from,
                                Pstate to) const {
  // Licence capping only lowers clocks (larger pstate index = lower
  // frequency): the AVX512 share of the code runs at max(p, cap) no
  // matter what is requested.
  const Pstate to_capped = std::max(to, avx512_pstate_);
  const Prediction def = base_->predict(sig, from, to);
  // Projecting onto the measured state must be the identity — the
  // signature already reflects whatever capping was active at `from`.
  // When both endpoints sit at/below the cap the licence is inactive and
  // the blend would equal the default prediction anyway.
  if (to == from || sig.vpi <= 0.0 ||
      (from >= avx512_pstate_ && to >= avx512_pstate_)) {
    return def;
  }

  // AVX512 component. Time: the vector share already ran licence-capped
  // at the source state, so its clock moves from max(from, cap) to
  // max(to, cap) — for targets above the cap it does not move at all
  // ("AVX512 instructions will not take benefit of higher CPU
  // frequencies", §V-A). Power: the request change still drags the rest
  // of the package (and the HW-tracked uncore) to the capped operating
  // point, which the from->capped regression captures.
  const Pstate from_capped = std::max(from, avx512_pstate_);
  const Prediction avx_time = base_->predict(sig, from_capped, to_capped);
  const Prediction avx_power = base_->predict(sig, from, to_capped);

  const double w = std::clamp(sig.vpi, 0.0, 1.0);
  Prediction out;
  out.time_s = (1.0 - w) * def.time_s + w * avx_time.time_s;
  out.power_w = (1.0 - w) * def.power_w + w * avx_power.power_w;
  out.cpi = (1.0 - w) * def.cpi + w * avx_time.cpi;
  return out;
}

}  // namespace ear::models
