#include "models/coeff_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ear::models {

using common::ConfigError;

namespace {
constexpr const char* kMagic = "ear-coefficients";
constexpr const char* kVersion = "v1";
}  // namespace

void save_coefficients(const CoefficientTable& table, std::ostream& out) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "pstates " << table.num_pstates() << '\n';
  out.precision(17);
  for (simhw::Pstate from = 0; from < table.num_pstates(); ++from) {
    for (simhw::Pstate to = 0; to < table.num_pstates(); ++to) {
      if (from == to) continue;  // the identity diagonal is implicit
      const Coefficients& k = table.at(from, to);
      if (!k.available) continue;
      out << from << ' ' << to << ' ' << k.a << ' ' << k.b << ' ' << k.c
          << ' ' << k.d << ' ' << k.e << ' ' << k.f << '\n';
    }
  }
}

std::shared_ptr<CoefficientTable> load_coefficients(std::istream& in) {
  std::string magic, version, key;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw ConfigError("coefficient file: bad header");
  }
  if (version != kVersion) {
    throw ConfigError("coefficient file: unsupported version " + version);
  }
  std::size_t num_pstates = 0;
  if (!(in >> key >> num_pstates) || key != "pstates" || num_pstates == 0) {
    throw ConfigError("coefficient file: missing pstate count");
  }
  auto table = std::make_shared<CoefficientTable>(num_pstates);

  // Entry lines are parsed individually so a truncated line is an error
  // rather than a silent end of input.
  std::string line;
  std::getline(in, line);  // consume the rest of the "pstates" line
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream entry(line);
    std::size_t from = 0, to = 0;
    Coefficients k;
    k.available = true;
    std::string extra;
    if (!(entry >> from >> to >> k.a >> k.b >> k.c >> k.d >> k.e >> k.f) ||
        (entry >> extra)) {
      throw ConfigError("coefficient file: malformed entry: " + line);
    }
    if (from >= num_pstates || to >= num_pstates) {
      throw ConfigError("coefficient file: pstate index out of range");
    }
    table->set(from, to, k);
  }
  return table;
}

void save_coefficients_file(const CoefficientTable& table,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot write coefficient file: " + path);
  save_coefficients(table, out);
}

std::shared_ptr<CoefficientTable> load_coefficients_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot read coefficient file: " + path);
  return load_coefficients(in);
}

}  // namespace ear::models
