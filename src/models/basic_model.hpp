// The default EAR projection model ([2], [8], [9]): two learned linear
// regressions (power and CPI) plus the DVFS time law.
#pragma once

#include <memory>

#include "models/coefficients.hpp"
#include "models/energy_model.hpp"

namespace ear::models {

class BasicModel : public EnergyModel {
 public:
  BasicModel(simhw::PstateTable pstates,
             std::shared_ptr<const CoefficientTable> coeffs);

  [[nodiscard]] std::string name() const override { return "basic"; }
  [[nodiscard]] Prediction predict(const metrics::Signature& sig,
                                   Pstate from, Pstate to) const override;

  [[nodiscard]] const simhw::PstateTable& pstates() const { return pstates_; }
  [[nodiscard]] const CoefficientTable& coefficients() const {
    return *coeffs_;
  }

 private:
  simhw::PstateTable pstates_;
  std::shared_ptr<const CoefficientTable> coeffs_;
};

}  // namespace ear::models
