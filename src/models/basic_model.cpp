#include "models/basic_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ear::models {

BasicModel::BasicModel(simhw::PstateTable pstates,
                       std::shared_ptr<const CoefficientTable> coeffs)
    : pstates_(std::move(pstates)), coeffs_(std::move(coeffs)) {
  EAR_CHECK_MSG(coeffs_ != nullptr, "coefficients required");
  EAR_CHECK_MSG(coeffs_->num_pstates() == pstates_.size(),
                "coefficient table size must match pstate table");
}

Prediction BasicModel::predict(const metrics::Signature& sig, Pstate from,
                               Pstate to) const {
  EAR_CHECK(from < pstates_.size() && to < pstates_.size());
  const Coefficients& k = coeffs_->at(from, to);
  Prediction out;
  out.power_w = k.a * sig.dc_power_w + k.b * sig.tpi + k.c;
  out.cpi = k.d * sig.cpi + k.e * sig.tpi + k.f;
  const double f_from = pstates_.freq(from).as_ghz();
  const double f_to = pstates_.freq(to).as_ghz();
  // T' = T * (CPI'/CPI) * (f/f') applied to the computational share of the
  // window only: MPI/accelerator wait time (measured by EARL's hooks) does
  // not scale with the CPU clock.
  const double w = std::clamp(sig.wait_fraction, 0.0, 1.0);
  const double scale = sig.cpi > 0.0
                           ? (out.cpi / sig.cpi) * (f_from / f_to)
                           : 1.0;
  out.time_s = sig.iter_time_s * ((1.0 - w) * scale + w);
  return out;
}

}  // namespace ear::models
