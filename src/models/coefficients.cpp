#include "models/coefficients.hpp"

#include "common/error.hpp"

namespace ear::models {

CoefficientTable::CoefficientTable(std::size_t num_pstates)
    : n_(num_pstates), table_(num_pstates * num_pstates) {
  EAR_CHECK_MSG(num_pstates > 0, "need at least one pstate");
  // Identity projection on the diagonal is always available.
  for (std::size_t p = 0; p < n_; ++p) {
    table_[p * n_ + p] = Coefficients{.a = 1.0, .b = 0.0, .c = 0.0,
                                      .d = 1.0, .e = 0.0, .f = 0.0,
                                      .available = true};
  }
}

const Coefficients& CoefficientTable::at(simhw::Pstate from,
                                         simhw::Pstate to) const {
  EAR_CHECK(from < n_ && to < n_);
  return table_[from * n_ + to];
}

void CoefficientTable::set(simhw::Pstate from, simhw::Pstate to,
                           const Coefficients& c) {
  EAR_CHECK(from < n_ && to < n_);
  table_[from * n_ + to] = c;
}

}  // namespace ear::models
