// Per-architecture projection coefficients, learned offline (EAR's
// "learning phase") and stored per (from, to) P-state pair:
//   P(to)   = A * P(from) + B * TPI + C
//   CPI(to) = D * CPI(from) + E * TPI + F
//   T(to)   = T(from) * (CPI(to)/CPI(from)) * (f(from)/f(to))
// — the Bell/Brochard model the paper's policies build on ([8], [9]).
#pragma once

#include <cstddef>
#include <vector>

#include "simhw/pstate.hpp"

namespace ear::models {

struct Coefficients {
  double a = 1.0, b = 0.0, c = 0.0;  // power regression
  double d = 1.0, e = 0.0, f = 0.0;  // CPI regression
  bool available = false;
};

/// Dense (from, to) coefficient table for one node architecture.
class CoefficientTable {
 public:
  explicit CoefficientTable(std::size_t num_pstates);

  [[nodiscard]] std::size_t num_pstates() const { return n_; }
  [[nodiscard]] const Coefficients& at(simhw::Pstate from,
                                       simhw::Pstate to) const;
  void set(simhw::Pstate from, simhw::Pstate to, const Coefficients& c);

 private:
  std::size_t n_;
  std::vector<Coefficients> table_;  // row-major [from][to]
};

}  // namespace ear::models
