// The EARL energy-policy API (the paper's plugin surface, §V).
//
// Policies receive signatures and produce frequency selections for both
// the CPU scope (a P-state) and the IMC scope (an UNCORE_RATIO_LIMIT
// window) — the paper's API extension. A policy returns CONTINUE while it
// is still iterating (the eUFS search) and READY once converged; EARL then
// moves to validation and keeps the selection until the signature changes.
#pragma once

#include <memory>
#include <string>

#include "common/units.hpp"
#include "metrics/signature.hpp"
#include "models/energy_model.hpp"
#include "simhw/pstate.hpp"

namespace ear::policies {

using common::Freq;
using simhw::Pstate;

/// Frequency selection for both scopes (the paper's node_freqs_t).
struct NodeFreqs {
  Pstate cpu_pstate = 0;
  Freq imc_max;  // UNCORE_RATIO_LIMIT maximum
  Freq imc_min;  // UNCORE_RATIO_LIMIT minimum (policies leave it at HW min)

  friend bool operator==(const NodeFreqs&, const NodeFreqs&) = default;
};

/// Returned by Policy::apply (the paper's policy states).
enum class PolicyState {
  kReady,     // selection converged; EARL moves to validation
  kContinue,  // iterative policy wants another signature at the new setting
};

/// Tunables (sysadmin defaults, overridable at job submission).
struct PolicySettings {
  /// Maximum predicted time penalty accepted by the CPU-frequency search.
  double cpu_policy_th = 0.05;
  /// Extra penalty budget for the uncore search (CPI/GB-s guards).
  double unc_policy_th = 0.02;
  /// Signature variation that triggers re-applying the policy (§V-B: 15%).
  double sig_change_th = 0.15;
  /// Start the IMC search from the HW-selected frequency (true) or from
  /// the maximum (false; the paper's ME+NG-U configuration).
  bool hw_guided_imc = true;
  /// min_time: minimum performance-gain/frequency-gain ratio to keep
  /// raising the clock.
  double min_eff_gain = 0.7;
  /// min_time: default P-state offset below nominal to start from.
  std::size_t min_time_default_offset = 4;
  /// min_time eUFS variant: raise the uncore *minimum* for performance
  /// (the paper's §VIII future-work strategy) instead of lowering the
  /// maximum for energy.
  bool raise_uncore = false;
  /// Minimum per-step iteration-time gain for the raise search to keep
  /// going.
  double raise_gain_th = 0.003;
  /// Measured-vs-predicted slack tolerated by validation before reverting.
  double validate_margin = 0.08;
};

/// Everything a policy needs from its host (EARL provides this when it
/// dlopens the plugin; here the registry passes it at construction).
struct PolicyContext {
  simhw::PstateTable pstates;
  simhw::UncoreRange uncore;
  models::EnergyModelPtr model;
  PolicySettings settings;
};

/// The policy interface (the function-pointer table of Code 1, as a class).
class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Consume a signature measured at the currently applied frequencies
  /// and produce the next selection.
  virtual PolicyState apply(const metrics::Signature& sig,
                            NodeFreqs& out) = 0;

  /// Called while stable: true = selection still good, false = EARL should
  /// reset to defaults and re-run the policy.
  [[nodiscard]] virtual bool validate(const metrics::Signature& sig) = 0;

  /// Forget all per-loop state (new loop / phase restart).
  virtual void restart() = 0;

  /// Informs the policy of the node's externally constrained state before
  /// each apply/validate: `applied` is the P-state actually in force
  /// (EARGM may have clamped the policy's request) and `fastest_allowed`
  /// the current cluster-manager limit (0 = unconstrained). Policies that
  /// project from a tracked source state must re-anchor on `applied` and
  /// keep their selections within the limit. Default: ignore (stateless
  /// policies).
  virtual void sync_constraints(Pstate applied, Pstate fastest_allowed) {
    (void)applied;
    (void)fastest_allowed;
  }

  /// The selection EARL applies before the policy has run (policy default).
  [[nodiscard]] virtual NodeFreqs default_freqs() const = 0;
};

using PolicyPtr = std::unique_ptr<Policy>;

/// Open uncore window (hardware UFS fully in control).
[[nodiscard]] inline NodeFreqs open_window(const PolicyContext& ctx,
                                           Pstate cpu) {
  return NodeFreqs{.cpu_pstate = cpu,
                   .imc_max = ctx.uncore.max(),
                   .imc_min = ctx.uncore.min()};
}

}  // namespace ear::policies
