#include "policies/min_time.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ear::policies {

MinTimePolicy::MinTimePolicy(PolicyContext ctx, bool with_eufs)
    : ctx_(std::move(ctx)),
      eufs_(with_eufs),
      default_pstate_(std::min(ctx_.pstates.nominal_pstate() +
                                   ctx_.settings.min_time_default_offset,
                               ctx_.pstates.min_pstate())),
      current_(default_pstate_),
      imc_(ctx_.uncore, ctx_.settings.unc_policy_th,
           ctx_.settings.hw_guided_imc),
      raise_(ctx_.uncore, ctx_.settings.raise_gain_th) {
  EAR_CHECK_MSG(ctx_.model != nullptr, "policy requires an energy model");
}

NodeFreqs MinTimePolicy::default_freqs() const {
  return open_window(ctx_, default_pstate_);
}

void MinTimePolicy::restart() {
  stage_ = Stage::kCpuFreqSel;
  current_ = default_pstate_;
  imc_.reset();
  raise_.reset();
  stable_ref_ = metrics::Signature{};
}

void MinTimePolicy::sync_constraints(Pstate applied,
                                     Pstate fastest_allowed) {
  if (stage_ == Stage::kCpuFreqSel || stage_ == Stage::kStable) {
    current_ = applied;
  }
  limit_ = fastest_allowed;
}

Pstate MinTimePolicy::select_pstate(const metrics::Signature& sig) const {
  // Walk towards higher frequencies (lower indices) while each step's
  // relative time gain is at least min_eff_gain times the relative
  // frequency gain — i.e. the extra clock actually buys performance.
  Pstate best = std::max(current_, limit_);
  models::Prediction prev = ctx_.model->predict(sig, current_, best);
  while (best > limit_) {
    const Pstate next = best - 1;
    const models::Prediction cand = ctx_.model->predict(sig, current_, next);
    const double f_gain = ctx_.pstates.freq(next).as_ghz() /
                              ctx_.pstates.freq(best).as_ghz() -
                          1.0;
    if (f_gain <= 0.0 || prev.time_s <= 0.0) break;
    const double t_gain = (prev.time_s - cand.time_s) / prev.time_s;
    if (t_gain < ctx_.settings.min_eff_gain * f_gain) break;
    best = next;
    prev = cand;
  }
  return best;
}

PolicyState MinTimePolicy::run_imc_stage(const metrics::Signature& sig,
                                         NodeFreqs& out, bool starting) {
  if (ctx_.settings.raise_uncore) {
    // Performance direction: raise the window minimum above the HW
    // selection while iteration time keeps improving.
    if (starting) {
      const Freq floor = raise_.start(sig);
      stage_ = Stage::kImcFreqSel;
      out = NodeFreqs{.cpu_pstate = current_,
                      .imc_max = ctx_.uncore.max(),
                      .imc_min = floor};
      return PolicyState::kContinue;
    }
    const ImcRaise::Decision d = raise_.step(sig);
    out = NodeFreqs{.cpu_pstate = current_,
                    .imc_max = ctx_.uncore.max(),
                    .imc_min = d.imc_min};
    if (d.verdict == ImcSearch::Verdict::kDone) {
      stage_ = Stage::kStable;
      stable_ref_ = metrics::Signature{};
      return PolicyState::kReady;
    }
    return PolicyState::kContinue;
  }

  // Energy direction: the shared lowering search.
  if (starting) {
    const Freq trial = imc_.start(sig);
    stage_ = Stage::kImcFreqSel;
    out = NodeFreqs{.cpu_pstate = current_,
                    .imc_max = trial,
                    .imc_min = ctx_.uncore.min()};
    return PolicyState::kContinue;
  }
  const ImcSearch::Decision d = imc_.step(sig);
  out = NodeFreqs{.cpu_pstate = current_,
                  .imc_max = d.imc_max,
                  .imc_min = ctx_.uncore.min()};
  if (d.verdict == ImcSearch::Verdict::kDone) {
    stage_ = Stage::kStable;
    stable_ref_ = metrics::Signature{};
    return PolicyState::kReady;
  }
  return PolicyState::kContinue;
}

PolicyState MinTimePolicy::apply(const metrics::Signature& sig,
                                 NodeFreqs& out) {
  switch (stage_) {
    case Stage::kCpuFreqSel: {
      const Pstate sel = select_pstate(sig);
      const bool unchanged = sel == current_;
      current_ = sel;
      if (!eufs_) {
        out = open_window(ctx_, sel);
        stage_ = Stage::kStable;
        stable_ref_ = metrics::Signature{};
        return PolicyState::kReady;
      }
      if (unchanged) {
        // The signature in hand is already at the selected frequency.
        return run_imc_stage(sig, out, /*starting=*/true);
      }
      out = open_window(ctx_, sel);
      stage_ = Stage::kCompRef;
      return PolicyState::kContinue;
    }
    case Stage::kCompRef:
      return run_imc_stage(sig, out, /*starting=*/true);
    case Stage::kImcFreqSel: {
      const auto& ref = ctx_.settings.raise_uncore ? raise_.reference()
                                                   : imc_.reference();
      if (metrics::signature_changed(ref, sig,
                                     ctx_.settings.sig_change_th)) {
        restart();
        out = default_freqs();
        return PolicyState::kContinue;
      }
      return run_imc_stage(sig, out, /*starting=*/false);
    }
    case Stage::kStable:
      restart();
      out = default_freqs();
      return PolicyState::kContinue;
  }
  EAR_CHECK_MSG(false, "unreachable policy stage");
  return PolicyState::kReady;
}

bool MinTimePolicy::validate(const metrics::Signature& sig) {
  if (!stable_ref_.valid) {
    stable_ref_ = sig;
    return true;
  }
  return !metrics::signature_changed(stable_ref_, sig,
                                     ctx_.settings.sig_change_th);
}

}  // namespace ear::policies
