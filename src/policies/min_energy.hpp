// min_energy_to_solution, basic form (§V-B): a linear search over
// P-states selecting the minimum predicted energy whose predicted time
// penalty stays below cpu_policy_th. The uncore is left to the hardware.
#pragma once

#include "policies/policy_api.hpp"

namespace ear::policies {

/// The linear search, shared with the eUFS-extended policy.
struct CpuSelection {
  Pstate pstate = 0;
  double predicted_time_s = 0.0;   // at the selected pstate
  double reference_time_s = 0.0;   // at the policy default pstate
};
[[nodiscard]] CpuSelection select_min_energy_pstate(
    const models::EnergyModel& model, const simhw::PstateTable& pstates,
    const metrics::Signature& sig, Pstate current, Pstate def,
    double cpu_policy_th);

class MinEnergyPolicy : public Policy {
 public:
  explicit MinEnergyPolicy(PolicyContext ctx);

  [[nodiscard]] std::string name() const override { return "min_energy"; }
  PolicyState apply(const metrics::Signature& sig, NodeFreqs& out) override;
  [[nodiscard]] bool validate(const metrics::Signature& sig) override;
  void restart() override;
  [[nodiscard]] NodeFreqs default_freqs() const override;
  void sync_constraints(Pstate applied, Pstate fastest_allowed) override;

  [[nodiscard]] Pstate current_pstate() const { return current_; }

 private:
  PolicyContext ctx_;
  Pstate default_pstate_;
  Pstate current_;
  Pstate limit_ = 0;  // EARGM: fastest P-state the node may run
  /// First signature observed *at the selected operating point*; the 15 %
  /// change detection compares against this (comparing against the
  /// pre-selection signature would mistake the frequency change itself
  /// for an application phase change).
  metrics::Signature stable_ref_{};
  double expected_time_s_ = 0.0;
};

}  // namespace ear::policies
