#include "policies/min_energy_eufs.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace ear::policies {

MinEnergyEufsPolicy::MinEnergyEufsPolicy(PolicyContext ctx)
    : ctx_(std::move(ctx)),
      default_pstate_(ctx_.pstates.nominal_pstate()),
      current_(default_pstate_),
      imc_(ctx_.uncore, ctx_.settings.unc_policy_th,
           ctx_.settings.hw_guided_imc) {
  EAR_CHECK_MSG(ctx_.model != nullptr, "policy requires an energy model");
}

NodeFreqs MinEnergyEufsPolicy::default_freqs() const {
  return open_window(ctx_, default_pstate_);
}

void MinEnergyEufsPolicy::restart() {
  transition(Stage::kCpuFreqSel);
  current_ = default_pstate_;
  imc_.reset();
  stable_ref_ = metrics::Signature{};
  expected_time_s_ = 0.0;
}

void MinEnergyEufsPolicy::transition(Stage to) {
  EAR_INVARIANT_MSG(legal_transition(stage_, to),
                    "illegal Fig. 2 stage transition");
  // The IMC search may only begin once a reference signature is anchored
  // (§V-B: the guards compare against it on every step).
  EAR_INVARIANT_MSG(to != Stage::kImcFreqSel || imc_.started(),
                    "entering IMC_FREQ_SEL without a reference signature");
  stage_ = to;
}

PolicyState MinEnergyEufsPolicy::enter_imc_search(
    const metrics::Signature& ref, NodeFreqs& out) {
  EAR_EXPECT_MSG(ref.valid, "IMC search reference must be a valid signature");
  const Freq trial = imc_.start(ref);
  transition(Stage::kImcFreqSel);
  out = NodeFreqs{.cpu_pstate = current_,
                  .imc_max = trial,
                  .imc_min = ctx_.uncore.min()};
  return PolicyState::kContinue;
}

void MinEnergyEufsPolicy::sync_constraints(Pstate applied,
                                           Pstate fastest_allowed) {
  // Re-anchor the tracked source state on what is actually in force: an
  // EARGM clamp otherwise makes every projection start from the wrong
  // frequency and validation thrash.
  if (stage_ == Stage::kCpuFreqSel || stage_ == Stage::kStable) {
    current_ = applied;
  }
  limit_ = fastest_allowed;
}

PolicyState MinEnergyEufsPolicy::apply(const metrics::Signature& sig,
                                       NodeFreqs& out) {
  switch (stage_) {
    case Stage::kCpuFreqSel: {
      // The signature in hand was measured at `current_` — which is the
      // policy default only until sync_constraints re-anchors it on an
      // EARGM clamp (or its release).
      const Pstate measured_at = current_;
      const CpuSelection sel = select_min_energy_pstate(
          *ctx_.model, ctx_.pstates, sig, current_,
          std::max(default_pstate_, limit_),
          ctx_.settings.cpu_policy_th);
      current_ = sel.pstate;
      expected_time_s_ = sel.predicted_time_s;
      EAR_LOG_DEBUG("policy", "eufs: cpu_sel -> pstate %zu (%.2f GHz)",
                    sel.pstate, ctx_.pstates.freq(sel.pstate).as_ghz());
      if (sel.pstate == measured_at) {
        // No CPU change: the signature in hand is already the reference
        // at the selected frequency (Fig. 2's shortcut edge). Comparing
        // against the measurement frequency — not the policy default —
        // keeps the IMC guards anchored at the frequency in force even
        // after an EARGM clamp re-anchored current_ (§V-B).
        return enter_imc_search(sig, out);
      }
      out = open_window(ctx_, sel.pstate);
      transition(Stage::kCompRef);
      return PolicyState::kContinue;
    }

    case Stage::kCompRef:
      // Signature measured at the selected CPU frequency, HW uncore.
      return enter_imc_search(sig, out);

    case Stage::kImcFreqSel: {
      // Robustness check (§V-B): a real phase change mid-search restarts
      // the whole policy. The guards use a much smaller threshold, so an
      // uncore-induced CPI shift cannot reach this one.
      if (metrics::signature_changed(imc_.reference(), sig,
                                     ctx_.settings.sig_change_th)) {
        EAR_LOG_DEBUG("policy", "eufs: phase change during IMC search");
        restart();
        out = default_freqs();
        return PolicyState::kContinue;
      }
      const ImcSearch::Decision d = imc_.step(sig);
      out = NodeFreqs{.cpu_pstate = current_,
                      .imc_max = d.imc_max,
                      .imc_min = ctx_.uncore.min()};
      if (d.verdict == ImcSearch::Verdict::kDone) {
        EAR_LOG_DEBUG("policy", "eufs: imc settled at %s",
                      d.imc_max.str().c_str());
        transition(Stage::kStable);
        stable_ref_ = metrics::Signature{};  // anchored on first validate
        return PolicyState::kReady;
      }
      return PolicyState::kContinue;
    }

    case Stage::kStable:
      // EARL only calls apply() after a failed validation; be safe.
      restart();
      out = default_freqs();
      return PolicyState::kContinue;
  }
  EAR_UNREACHABLE("policy stage outside the Fig. 2 state machine");
}

bool MinEnergyEufsPolicy::validate(const metrics::Signature& sig) {
  if (!stable_ref_.valid) {
    stable_ref_ = sig;
    return true;
  }
  return !metrics::signature_changed(stable_ref_, sig,
                                     ctx_.settings.sig_change_th);
}

}  // namespace ear::policies
