#include "policies/imc_search.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace ear::policies {

ImcSearch::ImcSearch(simhw::UncoreRange range, double unc_policy_th,
                     bool hw_guided)
    : range_(range),
      th_(unc_policy_th),
      hw_guided_(hw_guided),
      trial_(range.max()),
      last_good_(range.max()) {
  EAR_CHECK_MSG(unc_policy_th >= 0.0, "unc_policy_th must be >= 0");
}

void ImcSearch::reset() {
  started_ = false;
  ref_ = metrics::Signature{};
  trial_ = range_.max();
  last_good_ = range_.max();
  steps_ = 0;
}

Freq ImcSearch::start(const metrics::Signature& ref) {
  EAR_EXPECT_MSG(ref.valid, "reference signature must be valid");
  ref_ = ref;
  started_ = true;
  steps_ = 0;
  if (hw_guided_) {
    // The HW selection is the starting point and implicit "last good":
    // the first trial is one bin below the hardware's average choice.
    const Freq hw = range_.clamp(ref.avg_imc_freq);
    last_good_ = hw;
    trial_ = range_.step_down(hw);
  } else {
    // Non-guided: pin the maximum first and walk down from there, even if
    // the hardware had already chosen something lower (this is what makes
    // NG-U slower to converge, §V-B).
    last_good_ = range_.max();
    trial_ = range_.max();
  }
  EAR_ENSURE_MSG(trial_ >= range_.min() && trial_ <= range_.max(),
                 "trial frequency escaped the uncore window");
  return trial_;
}

bool ImcSearch::guard_tripped(const metrics::Signature& sig) const {
  const bool cpi_bad = sig.cpi > ref_.cpi * (1.0 + th_);
  const bool bw_bad = sig.gbps < ref_.gbps * (1.0 - th_);
  return cpi_bad || bw_bad;
}

ImcSearch::Decision ImcSearch::step(const metrics::Signature& sig) {
  EAR_EXPECT_MSG(started_, "step() before start()");
  ++steps_;
  // The walk lowers the maximum by one bin per signature, so it must
  // settle after at most one visit per grid point.
  EAR_INVARIANT_MSG(steps_ <= range_.num_steps(),
                    "IMC search exceeded the uncore grid size");
  Decision d;
  if (guard_tripped(sig)) {
    // Revert the last reduction and finish.
    trial_ = last_good_;
    d = Decision{.verdict = Verdict::kDone, .imc_max = last_good_};
  } else if (trial_ <= range_.min()) {
    // Nothing left to try; keep the floor.
    last_good_ = trial_;
    d = Decision{.verdict = Verdict::kDone, .imc_max = trial_};
  } else {
    last_good_ = trial_;
    trial_ = range_.step_down(trial_);
    d = Decision{.verdict = Verdict::kContinue, .imc_max = trial_};
  }
  EAR_ENSURE_MSG(d.imc_max >= range_.min() && d.imc_max <= range_.max(),
                 "selected window maximum escaped the uncore range");
  return d;
}

ImcRaise::ImcRaise(simhw::UncoreRange range, double gain_th)
    : range_(range),
      gain_th_(gain_th),
      trial_(range.min()),
      last_good_(range.min()) {
  EAR_CHECK_MSG(gain_th >= 0.0, "gain threshold must be >= 0");
}

void ImcRaise::reset() {
  started_ = false;
  ref_ = metrics::Signature{};
  prev_time_s_ = 0.0;
  trial_ = range_.min();
  last_good_ = range_.min();
}

Freq ImcRaise::start(const metrics::Signature& ref) {
  EAR_EXPECT_MSG(ref.valid, "reference signature must be valid");
  ref_ = ref;
  started_ = true;
  prev_time_s_ = ref.iter_time_s;
  // "No raise" means the window minimum stays at the hardware floor.
  last_good_ = range_.min();
  trial_ = range_.step_up(range_.clamp(ref.avg_imc_freq));
  return trial_;
}

ImcRaise::Decision ImcRaise::step(const metrics::Signature& sig) {
  EAR_EXPECT_MSG(started_, "step() before start()");
  const bool improved =
      sig.iter_time_s < prev_time_s_ * (1.0 - gain_th_);
  if (!improved) {
    trial_ = last_good_;
    return Decision{.verdict = ImcSearch::Verdict::kDone,
                    .imc_min = last_good_};
  }
  last_good_ = trial_;
  prev_time_s_ = sig.iter_time_s;
  if (trial_ >= range_.max()) {
    return Decision{.verdict = ImcSearch::Verdict::kDone, .imc_min = trial_};
  }
  trial_ = range_.step_up(trial_);
  return Decision{.verdict = ImcSearch::Verdict::kContinue,
                  .imc_min = trial_};
}

}  // namespace ear::policies
