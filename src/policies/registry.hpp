// Policy registry: the moral equivalent of EAR's policy plugin loader
// (policies ship as shared objects named on the command line; here they
// are registered factories selected by name).
#pragma once

#include <string>
#include <vector>

#include "policies/policy_api.hpp"

namespace ear::policies {

/// Instantiate a policy by name. Known names:
///   monitoring, min_energy, min_energy_eufs, min_energy_ngufs,
///   min_time, min_time_eufs, ups, duf
/// Throws ConfigError for unknown names.
[[nodiscard]] PolicyPtr make_policy(const std::string& name,
                                    PolicyContext ctx);

[[nodiscard]] std::vector<std::string> policy_names();

}  // namespace ear::policies
