// The no-op policy: nominal frequency, hardware UFS, never changes
// anything. This is the paper's "No policy" baseline column.
#pragma once

#include "policies/policy_api.hpp"

namespace ear::policies {

class MonitoringPolicy : public Policy {
 public:
  explicit MonitoringPolicy(PolicyContext ctx) : ctx_(std::move(ctx)) {}

  [[nodiscard]] std::string name() const override { return "monitoring"; }
  PolicyState apply(const metrics::Signature&, NodeFreqs& out) override {
    out = default_freqs();
    return PolicyState::kReady;
  }
  [[nodiscard]] bool validate(const metrics::Signature&) override {
    return true;
  }
  void restart() override {}
  [[nodiscard]] NodeFreqs default_freqs() const override {
    return open_window(ctx_, ctx_.pstates.nominal_pstate());
  }

 private:
  PolicyContext ctx_;
};

}  // namespace ear::policies
