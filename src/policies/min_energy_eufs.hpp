// min_energy_to_solution with explicit uncore frequency selection — the
// paper's main contribution (§V-B, Fig. 2).
//
// State machine:
//   CPU_FREQ_SEL: run the basic min_energy linear search. If it selects
//     the policy default (maximum) frequency, the current signature is
//     already the reference — jump straight to IMC_FREQ_SEL; otherwise go
//     through COMP_REF to measure a fresh reference at the new CPU clock.
//   COMP_REF: one signature at the selected CPU frequency with the HW in
//     control of the uncore; becomes the reference for the guards.
//   IMC_FREQ_SEL: lower the window maximum by 0.1 GHz per signature
//     (ImcSearch), HW-guided by default. Revert and finish when the
//     CPI/GB-s guards trip. A signature change (>15 %) during the search
//     restarts from CPU_FREQ_SEL (the paper's robustness check).
//   STABLE: hold the selection; validation watches for phase changes.
#pragma once

#include "policies/imc_search.hpp"
#include "policies/min_energy.hpp"
#include "policies/policy_api.hpp"

namespace ear::policies {

class MinEnergyEufsPolicy : public Policy {
 public:
  explicit MinEnergyEufsPolicy(PolicyContext ctx);

  [[nodiscard]] std::string name() const override {
    return ctx_.settings.hw_guided_imc ? "min_energy_eufs"
                                       : "min_energy_ngufs";
  }
  PolicyState apply(const metrics::Signature& sig, NodeFreqs& out) override;
  [[nodiscard]] bool validate(const metrics::Signature& sig) override;
  void restart() override;
  [[nodiscard]] NodeFreqs default_freqs() const override;
  void sync_constraints(Pstate applied, Pstate fastest_allowed) override;

  /// Introspection for tests, the state-machine bench and the model
  /// checker (tools/ear_model).
  enum class Stage { kCpuFreqSel, kCompRef, kImcFreqSel, kStable };
  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] Pstate current_pstate() const { return current_; }
  [[nodiscard]] const ImcSearch& imc_search() const { return imc_; }
  /// Validation anchor while STABLE (invalid until the first validate()).
  [[nodiscard]] const metrics::Signature& stable_reference() const {
    return stable_ref_;
  }

  /// Fig. 2's legal edges. Any stage may restart to CPU_FREQ_SEL (phase
  /// change / failed validation); the forward edges are exactly the
  /// paper's: CPU_FREQ_SEL → COMP_REF (new CPU clock needs a fresh
  /// reference), CPU_FREQ_SEL → IMC_FREQ_SEL (shortcut: signature in hand
  /// is the reference), COMP_REF → IMC_FREQ_SEL, IMC_FREQ_SEL → STABLE.
  [[nodiscard]] static constexpr bool legal_transition(Stage from, Stage to) {
    if (to == Stage::kCpuFreqSel) return true;  // restart edge
    switch (from) {
      case Stage::kCpuFreqSel:
        return to == Stage::kCompRef || to == Stage::kImcFreqSel;
      case Stage::kCompRef:
        return to == Stage::kImcFreqSel;
      case Stage::kImcFreqSel:
        return to == Stage::kStable;
      case Stage::kStable:
        return false;
    }
    return false;
  }

 private:
  /// All stage changes funnel through here; an illegal edge is a
  /// contract violation.
  void transition(Stage to);

  PolicyState enter_imc_search(const metrics::Signature& ref,
                               NodeFreqs& out);

  PolicyContext ctx_;
  Pstate default_pstate_;
  Pstate current_;
  Pstate limit_ = 0;  // EARGM: fastest P-state the node may run
  Stage stage_ = Stage::kCpuFreqSel;
  ImcSearch imc_;
  metrics::Signature stable_ref_{};
  double expected_time_s_ = 0.0;
};

}  // namespace ear::policies
