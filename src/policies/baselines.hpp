// Controller-based uncore baselines from the paper's related work (§VII),
// for the ablation benches:
//  - UpsPolicy: Uncore Power Scavenger style (Gholkar et al., SC'19) —
//    step the uncore down while IPC holds; DRAM-activity shifts signal a
//    phase change and reset the search.
//  - DufPolicy: DUF style (Andre et al., 2020) — keep measured memory
//    bandwidth within a tolerance of its reference and adapt continuously.
// Both leave the CPU at nominal (neither does DVFS), which is exactly the
// contrast with EAR's joint CPU+IMC policy.
#pragma once

#include "policies/policy_api.hpp"

namespace ear::policies {

class UpsPolicy : public Policy {
 public:
  explicit UpsPolicy(PolicyContext ctx);

  [[nodiscard]] std::string name() const override { return "ups"; }
  PolicyState apply(const metrics::Signature& sig, NodeFreqs& out) override;
  [[nodiscard]] bool validate(const metrics::Signature& sig) override;
  void restart() override;
  [[nodiscard]] NodeFreqs default_freqs() const override;

 private:
  PolicyContext ctx_;
  metrics::Signature ref_{};
  Freq current_max_;
  bool settled_ = false;
};

class DufPolicy : public Policy {
 public:
  explicit DufPolicy(PolicyContext ctx);

  [[nodiscard]] std::string name() const override { return "duf"; }
  PolicyState apply(const metrics::Signature& sig, NodeFreqs& out) override;
  [[nodiscard]] bool validate(const metrics::Signature& sig) override;
  void restart() override;
  [[nodiscard]] NodeFreqs default_freqs() const override;

 private:
  PolicyContext ctx_;
  metrics::Signature ref_{};
  Freq current_max_;
};

}  // namespace ear::policies
