// min_time_to_solution: EAR's second default policy. It starts from a
// sysadmin default frequency below nominal and raises the clock while the
// predicted performance gain justifies the frequency increase
// (gain ratio >= min_eff_gain). The paper lists its eUFS extension as
// ongoing work (§VIII); we implement it with the same shared IMC search.
#pragma once

#include "policies/imc_search.hpp"
#include "policies/policy_api.hpp"

namespace ear::policies {

class MinTimePolicy : public Policy {
 public:
  /// `with_eufs` appends the explicit uncore search after the CPU stage.
  MinTimePolicy(PolicyContext ctx, bool with_eufs);

  [[nodiscard]] std::string name() const override {
    if (!eufs_) return "min_time";
    return ctx_.settings.raise_uncore ? "min_time_raise" : "min_time_eufs";
  }
  PolicyState apply(const metrics::Signature& sig, NodeFreqs& out) override;
  [[nodiscard]] bool validate(const metrics::Signature& sig) override;
  void restart() override;
  [[nodiscard]] NodeFreqs default_freqs() const override;
  void sync_constraints(Pstate applied, Pstate fastest_allowed) override;

  [[nodiscard]] Pstate current_pstate() const { return current_; }
  /// The upward frequency selection, exposed for tests.
  [[nodiscard]] Pstate select_pstate(const metrics::Signature& sig) const;

 private:
  enum class Stage { kCpuFreqSel, kCompRef, kImcFreqSel, kStable };

  /// Dispatch into the lowering (energy) or raising (performance) search.
  PolicyState run_imc_stage(const metrics::Signature& sig, NodeFreqs& out,
                            bool starting);

  PolicyContext ctx_;
  bool eufs_;
  Pstate default_pstate_;
  Pstate current_;
  Pstate limit_ = 0;  // EARGM: fastest P-state the node may run
  Stage stage_ = Stage::kCpuFreqSel;
  ImcSearch imc_;
  ImcRaise raise_;
  metrics::Signature stable_ref_{};
};

}  // namespace ear::policies
