#include "policies/baselines.hpp"

namespace ear::policies {

// ---------------------------------------------------------------------
// UPS-style controller
// ---------------------------------------------------------------------

UpsPolicy::UpsPolicy(PolicyContext ctx)
    : ctx_(std::move(ctx)), current_max_(ctx_.uncore.max()) {}

NodeFreqs UpsPolicy::default_freqs() const {
  return open_window(ctx_, ctx_.pstates.nominal_pstate());
}

void UpsPolicy::restart() {
  ref_ = metrics::Signature{};
  current_max_ = ctx_.uncore.max();
  settled_ = false;
}

PolicyState UpsPolicy::apply(const metrics::Signature& sig, NodeFreqs& out) {
  out = NodeFreqs{.cpu_pstate = ctx_.pstates.nominal_pstate(),
                  .imc_max = current_max_,
                  .imc_min = ctx_.uncore.min()};
  if (!ref_.valid) {
    ref_ = sig;
    current_max_ = ctx_.uncore.step_down(ctx_.uncore.clamp(sig.avg_imc_freq));
    out.imc_max = current_max_;
    return PolicyState::kContinue;
  }
  // IPC degradation beyond the budget: step back up and settle there.
  const double ipc_ref = ref_.cpi > 0.0 ? 1.0 / ref_.cpi : 0.0;
  const double ipc_now = sig.cpi > 0.0 ? 1.0 / sig.cpi : 0.0;
  if (ipc_now < ipc_ref * (1.0 - ctx_.settings.unc_policy_th)) {
    current_max_ = ctx_.uncore.step_up(current_max_);
    out.imc_max = current_max_;
    settled_ = true;
    return PolicyState::kReady;
  }
  if (current_max_ <= ctx_.uncore.min()) {
    settled_ = true;
    return PolicyState::kReady;
  }
  current_max_ = ctx_.uncore.step_down(current_max_);
  out.imc_max = current_max_;
  return PolicyState::kContinue;
}

bool UpsPolicy::validate(const metrics::Signature& sig) {
  // DRAM-activity change (bandwidth proxy) signals a new phase: rescan.
  return !metrics::signature_changed(ref_, sig, ctx_.settings.sig_change_th);
}

// ---------------------------------------------------------------------
// DUF-style controller
// ---------------------------------------------------------------------

DufPolicy::DufPolicy(PolicyContext ctx)
    : ctx_(std::move(ctx)), current_max_(ctx_.uncore.max()) {}

NodeFreqs DufPolicy::default_freqs() const {
  return open_window(ctx_, ctx_.pstates.nominal_pstate());
}

void DufPolicy::restart() {
  ref_ = metrics::Signature{};
  current_max_ = ctx_.uncore.max();
}

PolicyState DufPolicy::apply(const metrics::Signature& sig, NodeFreqs& out) {
  out = NodeFreqs{.cpu_pstate = ctx_.pstates.nominal_pstate(),
                  .imc_max = current_max_,
                  .imc_min = ctx_.uncore.min()};
  if (!ref_.valid) {
    ref_ = sig;
    current_max_ = ctx_.uncore.clamp(sig.avg_imc_freq);
    out.imc_max = current_max_;
    return PolicyState::kContinue;
  }
  // Keep bandwidth within tolerance; DUF adapts in both directions and
  // never "finishes" — model that as always-CONTINUE until the floor or a
  // bounce, then READY with ongoing validation.
  if (sig.gbps < ref_.gbps * (1.0 - ctx_.settings.unc_policy_th)) {
    current_max_ = ctx_.uncore.step_up(current_max_);
    out.imc_max = current_max_;
    return PolicyState::kReady;
  }
  if (current_max_ <= ctx_.uncore.min()) return PolicyState::kReady;
  current_max_ = ctx_.uncore.step_down(current_max_);
  out.imc_max = current_max_;
  return PolicyState::kContinue;
}

bool DufPolicy::validate(const metrics::Signature& sig) {
  return !metrics::signature_changed(ref_, sig, ctx_.settings.sig_change_th);
}

}  // namespace ear::policies
