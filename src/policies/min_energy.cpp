#include "policies/min_energy.hpp"

#include "common/log.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ear::policies {

CpuSelection select_min_energy_pstate(const models::EnergyModel& model,
                                      const simhw::PstateTable& pstates,
                                      const metrics::Signature& sig,
                                      Pstate current, Pstate def,
                                      double cpu_policy_th) {
  EAR_CHECK_MSG(sig.valid, "cannot select from an invalid signature");
  const models::Prediction ref = model.predict(sig, current, def);
  const double limit = ref.time_s * (1.0 + cpu_policy_th);

  CpuSelection best{.pstate = def,
                    .predicted_time_s = ref.time_s,
                    .reference_time_s = ref.time_s};
  double best_energy = ref.energy_j();
  // The search covers the default frequency and below: min_energy's
  // default is the maximum non-turbo frequency, and turbo is reserved for
  // min_time configurations.
  for (Pstate p = def + 1; p < pstates.size(); ++p) {
    const models::Prediction pred = model.predict(sig, current, p);
    if (pred.time_s > limit) continue;
    if (pred.energy_j() < best_energy) {
      best_energy = pred.energy_j();
      best.pstate = p;
      best.predicted_time_s = pred.time_s;
    }
  }
  return best;
}

MinEnergyPolicy::MinEnergyPolicy(PolicyContext ctx)
    : ctx_(std::move(ctx)),
      default_pstate_(ctx_.pstates.nominal_pstate()),
      current_(default_pstate_) {
  EAR_CHECK_MSG(ctx_.model != nullptr, "min_energy requires an energy model");
}

NodeFreqs MinEnergyPolicy::default_freqs() const {
  return open_window(ctx_, default_pstate_);
}

void MinEnergyPolicy::restart() {
  current_ = default_pstate_;
  stable_ref_ = metrics::Signature{};
  expected_time_s_ = 0.0;
}

void MinEnergyPolicy::sync_constraints(Pstate applied,
                                       Pstate fastest_allowed) {
  current_ = applied;
  limit_ = fastest_allowed;
}

PolicyState MinEnergyPolicy::apply(const metrics::Signature& sig,
                                   NodeFreqs& out) {
  // An active EARGM limit moves the effective default down with it.
  const Pstate def = std::max(default_pstate_, limit_);
  const CpuSelection sel =
      select_min_energy_pstate(*ctx_.model, ctx_.pstates, sig, current_,
                               def, ctx_.settings.cpu_policy_th);
  EAR_LOG_DEBUG("policy",
                "min_energy: from p%zu sel p%zu predT %.4f refT %.4f | %s "
                "wait=%.2f",
                current_, sel.pstate, sel.predicted_time_s,
                sel.reference_time_s, sig.str().c_str(), sig.wait_fraction);
  current_ = sel.pstate;
  stable_ref_ = metrics::Signature{};  // re-anchored on first validation
  expected_time_s_ = sel.predicted_time_s;
  out = open_window(ctx_, sel.pstate);
  return PolicyState::kReady;
}

bool MinEnergyPolicy::validate(const metrics::Signature& sig) {
  if (!stable_ref_.valid) {
    // First signature at the selected operating point: anchor the phase
    // reference and check the model's time promise.
    stable_ref_ = sig;
    const bool ok =
        expected_time_s_ <= 0.0 ||
        sig.iter_time_s <=
            expected_time_s_ * (1.0 + ctx_.settings.validate_margin);
    if (!ok) {
      EAR_LOG_DEBUG("policy",
                    "min_energy: time promise broken (measured %.4fs vs "
                    "expected %.4fs)",
                    sig.iter_time_s, expected_time_s_);
    }
    return ok;
  }
  // A different application phase invalidates the selection.
  const bool changed = metrics::signature_changed(
      stable_ref_, sig, ctx_.settings.sig_change_th);
  if (changed) {
    EAR_LOG_DEBUG("policy",
                  "min_energy: signature changed (cpi %.3f->%.3f, gbs "
                  "%.2f->%.2f)",
                  stable_ref_.cpi, sig.cpi, stable_ref_.gbps, sig.gbps);
  }
  return !changed;
}

}  // namespace ear::policies
