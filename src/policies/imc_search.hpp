// The explicit uncore frequency search (§V-B, Fig. 2's IMC_FREQ_SEL state).
//
// Starting either from the hardware-selected frequency (HW-guided, the
// paper's default) or from the range maximum (the ME+NG-U configuration),
// the search lowers the *maximum* uncore limit by one 100 MHz bin per
// signature. It reverts the last step and stops when either guard trips:
//   CPI  > reference CPI  * (1 + unc_policy_th), or
//   GB/s < reference GB/s * (1 - unc_policy_th).
// Only the maximum limit moves; the minimum stays at the hardware minimum
// so the HW loop can still lower the clock if the application changes.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "metrics/signature.hpp"
#include "simhw/pstate.hpp"

namespace ear::policies {

using common::Freq;

class ImcSearch {
 public:
  ImcSearch(simhw::UncoreRange range, double unc_policy_th, bool hw_guided);

  /// Begin a search with `ref` as the reference signature (measured with
  /// the hardware in control of the uncore). Returns the first trial
  /// frequency to apply as the window maximum.
  Freq start(const metrics::Signature& ref);

  enum class Verdict { kContinue, kDone };
  struct Decision {
    Verdict verdict = Verdict::kContinue;
    Freq imc_max;  // window maximum to apply next
  };

  /// Consume the signature measured at the current trial and decide the
  /// next move. Only valid after start().
  Decision step(const metrics::Signature& sig);

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const metrics::Signature& reference() const { return ref_; }
  [[nodiscard]] Freq current_trial() const { return trial_; }
  /// The setting the search reverts to when a guard trips (introspection
  /// for the model checker's revert-iff-breach property).
  [[nodiscard]] Freq last_good() const { return last_good_; }
  [[nodiscard]] std::size_t steps_taken() const { return steps_; }

  void reset();

 private:
  [[nodiscard]] bool guard_tripped(const metrics::Signature& sig) const;

  simhw::UncoreRange range_;
  double th_;
  bool hw_guided_;
  bool started_ = false;
  metrics::Signature ref_{};
  Freq trial_;      // currently applied window maximum
  Freq last_good_;  // last setting that passed the guards
  std::size_t steps_ = 0;
};

/// The paper's future-work strategy (§VIII): performance-oriented
/// policies may *raise* the uncore instead. Starting one bin above the
/// hardware's selection, the search raises the window *minimum* (pinning
/// the HW loop from below) while each step still improves the measured
/// iteration time by at least `gain_th`; the last unhelpful raise is
/// reverted. Useful where the HW loop parks the uncore low (wide MPI
/// waits) and costs memory performance.
class ImcRaise {
 public:
  ImcRaise(simhw::UncoreRange range, double gain_th);

  /// Returns the first trial window *minimum*.
  Freq start(const metrics::Signature& ref);

  struct Decision {
    ImcSearch::Verdict verdict = ImcSearch::Verdict::kContinue;
    Freq imc_min;  // window minimum to apply next
  };
  Decision step(const metrics::Signature& sig);

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const metrics::Signature& reference() const { return ref_; }
  [[nodiscard]] Freq current_trial() const { return trial_; }

  void reset();

 private:
  simhw::UncoreRange range_;
  double gain_th_;
  bool started_ = false;
  metrics::Signature ref_{};
  double prev_time_s_ = 0.0;
  Freq trial_;
  Freq last_good_;  // window minimum that last proved worthwhile
};

}  // namespace ear::policies
