#include "policies/registry.hpp"

#include "common/error.hpp"
#include "policies/baselines.hpp"
#include "policies/min_energy.hpp"
#include "policies/min_energy_eufs.hpp"
#include "policies/min_time.hpp"
#include "policies/monitoring.hpp"

namespace ear::policies {

PolicyPtr make_policy(const std::string& name, PolicyContext ctx) {
  if (name == "monitoring") {
    return std::make_unique<MonitoringPolicy>(std::move(ctx));
  }
  if (name == "min_energy") {
    return std::make_unique<MinEnergyPolicy>(std::move(ctx));
  }
  if (name == "min_energy_eufs") {
    ctx.settings.hw_guided_imc = true;
    return std::make_unique<MinEnergyEufsPolicy>(std::move(ctx));
  }
  if (name == "min_energy_ngufs") {
    ctx.settings.hw_guided_imc = false;
    return std::make_unique<MinEnergyEufsPolicy>(std::move(ctx));
  }
  if (name == "min_time") {
    return std::make_unique<MinTimePolicy>(std::move(ctx), /*with_eufs=*/false);
  }
  if (name == "min_time_eufs") {
    ctx.settings.raise_uncore = false;
    return std::make_unique<MinTimePolicy>(std::move(ctx), /*with_eufs=*/true);
  }
  if (name == "min_time_raise") {
    ctx.settings.raise_uncore = true;
    return std::make_unique<MinTimePolicy>(std::move(ctx), /*with_eufs=*/true);
  }
  if (name == "ups") return std::make_unique<UpsPolicy>(std::move(ctx));
  if (name == "duf") return std::make_unique<DufPolicy>(std::move(ctx));
  throw common::ConfigError("unknown policy: " + name);
}

std::vector<std::string> policy_names() {
  return {"monitoring",       "min_energy",    "min_energy_eufs",
          "min_energy_ngufs", "min_time",      "min_time_eufs",
          "min_time_raise",   "ups",           "duf"};
}

}  // namespace ear::policies
