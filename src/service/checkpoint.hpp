// Crash-safe campaign checkpoints.
//
// A checkpoint is a versioned, CRC-guarded binary snapshot of campaign
// progress: every completed (point, run) slot with its full RunResult,
// stored bit-exactly (doubles travel as IEEE bit patterns). Resume feeds
// the slots back through Campaign::preload, so the run-index-order
// reduction consumes exactly the bytes an uninterrupted campaign would
// have produced — the resumed report is bitwise identical, at any job
// count.
//
// File layout (all integers little-endian):
//
//   magic   "EARCKPT1"                      8 bytes
//   len     payload length                  u32
//   payload format version                  u32
//           stamp (writer's BuildStamp)     varint-length string
//           fingerprint (campaign grid)     u64
//           total_slots                     u64
//           slot count                      varint
//           slots: point, run, RunResult    (see serialize_run_result)
//   crc     CRC-32 of payload               u32
//
// Snapshots are written atomically (temp file + rename), so a reader
// never observes a half-written file; a SIGKILL mid-write leaves the
// previous snapshot intact. Loading is forgiving by design:
// try_load_checkpoint never throws on bad content — a truncated,
// corrupt, version-skewed or foreign-binary checkpoint yields
// "start clean" plus a human-readable note.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/wire.hpp"
#include "sim/campaign.hpp"

namespace ear::service {

/// Bumped on any incompatible layout change; old files are rejected
/// with a clear note, never misread.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// One completed (point, run) slot.
struct SlotRecord {
  std::uint64_t point = 0;
  std::uint64_t run = 0;
  sim::RunResult result;
};

struct CheckpointMeta {
  std::uint32_t format = kCheckpointFormatVersion;
  /// BuildStamp::line() of the writing binary; resume requires an exact
  /// match so a rebuilt simulator cannot silently mix results.
  std::string stamp;
  /// campaign_fingerprint() of the writer's grid; rejects reuse against
  /// a changed spec (different apps, policies, seeds or run counts).
  std::uint64_t fingerprint = 0;
  /// Total (point, run) slots of the full campaign, for progress display.
  std::uint64_t total_slots = 0;
};

struct Checkpoint {
  CheckpointMeta meta;
  std::vector<SlotRecord> slots;
};

/// Identity of a campaign grid: FNV-1a over each point's label, run
/// count, seed, workload/policy coordinates, policy tunables (the
/// cpu_th/unc_th thresholds a sweep spec sets, as IEEE bit patterns)
/// and the full fault-plan contents, in point order. Anything that can
/// change a run's results belongs here — the resume gate compares this
/// hash to decide whether checkpointed slots may be mixed with new runs.
[[nodiscard]] std::uint64_t campaign_fingerprint(
    const std::vector<sim::CampaignPoint>& points);
[[nodiscard]] std::uint64_t campaign_fingerprint(const sim::Campaign& c);

/// Bit-exact RunResult encoding (doubles as IEEE-754 bit patterns).
void serialize_run_result(ByteWriter* w, const sim::RunResult& r);
[[nodiscard]] sim::RunResult deserialize_run_result(ByteReader* r);

[[nodiscard]] std::string encode_checkpoint(const Checkpoint& c);
/// Strict decode; throws WireError on any defect (tests use this to
/// pin down *why* a file is rejected).
[[nodiscard]] Checkpoint decode_checkpoint(std::string_view bytes);

struct CheckpointLoad {
  bool loaded = false;
  Checkpoint checkpoint;  // valid only when loaded
  /// Why the file was not loaded ("no checkpoint at ...", "checkpoint
  /// written by a different binary: ...", ...); empty on success.
  std::string note;
};

/// Forgiving load for resume: missing, truncated, corrupt, foreign-stamp
/// or foreign-fingerprint files all return loaded = false with a note —
/// the campaign starts clean instead of crashing or double-counting.
[[nodiscard]] CheckpointLoad try_load_checkpoint(
    const std::string& path, std::string_view expect_stamp,
    std::uint64_t expect_fingerprint);

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, then rename over the target (plus a directory fsync). Readers
/// see the old file or the new one, never a mixture — and a power loss
/// after return cannot leave a zero-length or partial file behind.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Read a whole file; throws WireError when it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path);

/// Accumulates completed slots and persists a snapshot every
/// `every` newly recorded slots (plus on flush()). Mutation is not
/// thread-safe by itself: the campaign engine already serialises
/// on_slot_complete callbacks under its internal mutex, which is where
/// record() runs. recorded() alone is safe to poll from any thread
/// (should_stop hooks run on worker threads).
class CheckpointManager {
 public:
  CheckpointManager(std::string path, CheckpointMeta meta,
                    std::size_t every = 1);

  /// Seed with slots restored from a previous snapshot (no write).
  void adopt(std::vector<SlotRecord> slots);
  /// Record a newly completed slot; flushes when `every` divides the
  /// number of slots recorded since the last flush.
  void record(std::size_t point, std::size_t run,
              const sim::RunResult& result);
  /// Persist now (atomic). Idempotent when nothing changed.
  void flush();

  [[nodiscard]] const std::vector<SlotRecord>& slots() const {
    return slots_;
  }
  /// Slots recorded by *this* process (excludes adopted ones).
  [[nodiscard]] std::size_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  CheckpointMeta meta_;
  std::size_t every_;
  std::vector<SlotRecord> slots_;
  // Atomic because worker threads poll recorded() via should_stop while
  // record() increments under the campaign mutex.
  std::atomic<std::size_t> recorded_{0};
  std::size_t dirty_ = 0;  // slots not yet on disk
};

}  // namespace ear::service
