// Wire-format primitives shared by the service layer's binary files
// (campaign checkpoints, record/replay traces).
//
// Everything is little-endian and explicitly sized; doubles travel as
// their IEEE-754 bit patterns so a value read back is the *same* value,
// bit for bit — the checkpoint/resume determinism proof rests on that.
// Varints use the LEB128 low-7-bits encoding; signed values are zigzag
// mapped first so small negative deltas stay short.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace ear::service {

/// Thrown when a binary file is truncated, corrupt, or from a different
/// format version. Derives from ConfigError: to callers, a bad file is
/// bad input, not a bug.
class WireError : public common::ConfigError {
 public:
  explicit WireError(const std::string& what) : common::ConfigError(what) {}
};

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Append-only encoder. All multi-byte integers little-endian.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern: NaN payloads, -0.0 and subnormals all
  /// round-trip bit-exactly.
  void f64(double v);
  void varint(std::uint64_t v);
  void svarint(std::int64_t v);  // zigzag + varint
  void str(std::string_view s);  // varint length + raw bytes
  void raw(std::string_view bytes);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed buffer; every read throws
/// WireError instead of walking past the end, so feeding a truncated
/// file never reads garbage.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : view_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return view_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == view_.size(); }

 private:
  void require(std::size_t n) const;

  std::string_view view_;
  std::size_t pos_ = 0;
};

}  // namespace ear::service
