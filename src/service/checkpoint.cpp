#include "service/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/contracts.hpp"
#include "faults/fault_plan.hpp"
#include "policies/policy_api.hpp"

namespace ear::service {

namespace {

constexpr std::string_view kMagic = "EARCKPT1";

std::uint64_t fnv1a(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Doubles hash as their IEEE-754 bit patterns — the same convention the
/// checkpoint payload uses, so "same value" means "same bits".
std::uint64_t fnv1a_f64(std::uint64_t h, double v) {
  return fnv1a_u64(h, std::bit_cast<std::uint64_t>(v));
}

void serialize_node_result(ByteWriter* w, const sim::NodeResult& n) {
  w->f64(n.elapsed_s);
  w->f64(n.energy_j);
  w->f64(n.pkg_energy_j);
  w->f64(n.avg_dc_power_w);
  w->f64(n.avg_pkg_power_w);
  w->f64(n.avg_cpu_ghz);
  w->f64(n.avg_imc_ghz);
  w->f64(n.cpi);
  w->f64(n.tpi);
  w->f64(n.gbps);
  w->f64(n.vpi);
  w->varint(n.signatures);
  w->varint(n.msr_writes);
  w->varint(n.rejected_windows);
  w->varint(n.reanchors);
  w->varint(n.verify_failures);
  w->varint(n.reprobes);
  w->u8(n.degraded ? 1 : 0);
}

sim::NodeResult deserialize_node_result(ByteReader* r) {
  sim::NodeResult n;
  n.elapsed_s = r->f64();
  n.energy_j = r->f64();
  n.pkg_energy_j = r->f64();
  n.avg_dc_power_w = r->f64();
  n.avg_pkg_power_w = r->f64();
  n.avg_cpu_ghz = r->f64();
  n.avg_imc_ghz = r->f64();
  n.cpi = r->f64();
  n.tpi = r->f64();
  n.gbps = r->f64();
  n.vpi = r->f64();
  n.signatures = r->varint();
  n.msr_writes = r->varint();
  n.rejected_windows = r->varint();
  n.reanchors = r->varint();
  n.verify_failures = r->varint();
  n.reprobes = r->varint();
  n.degraded = r->u8() != 0;
  return n;
}

void serialize_fault_report(ByteWriter* w, const faults::FaultReport& f) {
  w->varint(f.msr_drops);
  w->varint(f.msr_locks);
  w->varint(f.snapshot_faults);
  w->varint(f.dropped_readings);
  w->varint(f.island_dropouts);
  w->varint(f.verify_failures);
  w->varint(f.rejected_windows);
  w->varint(f.missed_readings);
  w->varint(f.reprobes);
  w->varint(f.fallbacks);
  w->varint(f.reanchors);
  w->varint(f.unsettled_nodes);
}

faults::FaultReport deserialize_fault_report(ByteReader* r) {
  faults::FaultReport f;
  f.msr_drops = r->varint();
  f.msr_locks = r->varint();
  f.snapshot_faults = r->varint();
  f.dropped_readings = r->varint();
  f.island_dropouts = r->varint();
  f.verify_failures = r->varint();
  f.rejected_windows = r->varint();
  f.missed_readings = r->varint();
  f.reprobes = r->varint();
  f.fallbacks = r->varint();
  f.reanchors = r->varint();
  f.unsettled_nodes = r->varint();
  return f;
}

std::string encode_payload(const Checkpoint& c) {
  ByteWriter w;
  w.u32(c.meta.format);
  w.str(c.meta.stamp);
  w.u64(c.meta.fingerprint);
  w.u64(c.meta.total_slots);
  w.varint(c.slots.size());
  for (const SlotRecord& s : c.slots) {
    w.varint(s.point);
    w.varint(s.run);
    serialize_run_result(&w, s.result);
  }
  return w.bytes();
}

/// Inverse of encode_payload, over the CRC-verified payload bytes.
Checkpoint decode_payload(std::string_view payload) {
  ByteReader p(payload);
  Checkpoint c;
  c.meta.format = p.u32();
  if (c.meta.format != kCheckpointFormatVersion) {
    throw WireError("checkpoint format v" + std::to_string(c.meta.format) +
                    " (this binary reads v" +
                    std::to_string(kCheckpointFormatVersion) + ")");
  }
  c.meta.stamp = p.str();
  c.meta.fingerprint = p.u64();
  c.meta.total_slots = p.u64();
  const std::uint64_t count = p.varint();
  c.slots.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SlotRecord s;
    s.point = p.varint();
    s.run = p.varint();
    s.result = deserialize_run_result(&p);
    c.slots.push_back(std::move(s));
  }
  if (!p.at_end()) {
    throw WireError("checkpoint payload has trailing garbage");
  }
  return c;
}

}  // namespace

std::uint64_t campaign_fingerprint(
    const std::vector<sim::CampaignPoint>& points) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  h = fnv1a_u64(h, points.size());
  for (const sim::CampaignPoint& p : points) {
    h = fnv1a(h, p.label);
    h = fnv1a_u64(h, p.runs);
    h = fnv1a_u64(h, p.cfg.seed);
    h = fnv1a(h, p.cfg.app.name);
    h = fnv1a(h, p.cfg.earl.policy);
    h = fnv1a_u64(h, p.cfg.app.nodes);
    h = fnv1a_u64(h, p.cfg.app.total_iterations());
    h = fnv1a_u64(h, p.cfg.attach_earl ? 1 : 0);
    // Policy tunables steer every frequency decision — sweep specs feed
    // cpu_th/unc_th straight into these — so they are part of the grid's
    // identity: a re-run with edited thresholds must not silently mix
    // its results into an old checkpoint.
    const policies::PolicySettings& ps = p.cfg.earl.policy_settings;
    h = fnv1a(h, p.cfg.earl.model);
    h = fnv1a_f64(h, ps.cpu_policy_th);
    h = fnv1a_f64(h, ps.unc_policy_th);
    h = fnv1a_f64(h, ps.sig_change_th);
    h = fnv1a_f64(h, ps.min_eff_gain);
    h = fnv1a_f64(h, ps.raise_gain_th);
    h = fnv1a_f64(h, ps.validate_margin);
    h = fnv1a_u64(h, ps.min_time_default_offset);
    h = fnv1a_u64(h, (ps.hw_guided_imc ? 1u : 0u) |
                         (ps.raise_uncore ? 2u : 0u));
    // Fault plans hash by content, not by event count: editing a plan
    // file without adding or removing events still changes the grid.
    const faults::FaultPlan* plan = p.cfg.fault_plan.get();
    h = fnv1a_u64(h, plan != nullptr ? plan->specs.size() : 0);
    if (plan != nullptr) {
      for (const faults::FaultSpec& s : plan->specs) {
        h = fnv1a_u64(h, static_cast<std::uint64_t>(s.family));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.node)));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.socket)));
        h = fnv1a_u64(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.island)));
        h = fnv1a_f64(h, s.start_s);
        h = fnv1a_f64(h, s.end_s);
        h = fnv1a_f64(h, s.probability);
        h = fnv1a_f64(h, s.magnitude);
        h = fnv1a_u64(h, s.reg);
      }
    }
  }
  return h;
}

std::uint64_t campaign_fingerprint(const sim::Campaign& c) {
  return campaign_fingerprint(c.points());
}

void serialize_run_result(ByteWriter* w, const sim::RunResult& r) {
  w->f64(r.total_time_s);
  w->f64(r.total_energy_j);
  w->f64(r.avg_dc_power_w);
  w->f64(r.avg_pkg_power_w);
  w->f64(r.avg_cpu_ghz);
  w->f64(r.avg_imc_ghz);
  w->f64(r.cpi);
  w->f64(r.gbps);
  w->varint(r.nodes.size());
  for (const sim::NodeResult& n : r.nodes) serialize_node_result(w, n);
  w->varint(r.imc_timeline.size());
  for (const auto& [t, ghz] : r.imc_timeline) {
    w->f64(t);
    w->f64(ghz);
  }
  w->varint(r.timeline.size());
  for (const sim::TimelinePoint& p : r.timeline) {
    w->f64(p.t_s);
    w->f64(p.cpu_ghz);
    w->f64(p.imc_ghz);
    w->f64(p.dc_power_w);
  }
  w->varint(r.eargm_throttles);
  w->varint(r.eargm_final_limit);
  serialize_fault_report(w, r.fault_report);
  w->varint(r.fault_events.size());
  for (const faults::FaultEvent& e : r.fault_events) {
    w->f64(e.t_s);
    w->varint(e.node);
    w->u8(static_cast<std::uint8_t>(e.family));
  }
}

sim::RunResult deserialize_run_result(ByteReader* r) {
  sim::RunResult out;
  out.total_time_s = r->f64();
  out.total_energy_j = r->f64();
  out.avg_dc_power_w = r->f64();
  out.avg_pkg_power_w = r->f64();
  out.avg_cpu_ghz = r->f64();
  out.avg_imc_ghz = r->f64();
  out.cpi = r->f64();
  out.gbps = r->f64();
  const std::uint64_t nodes = r->varint();
  out.nodes.reserve(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    out.nodes.push_back(deserialize_node_result(r));
  }
  const std::uint64_t imc = r->varint();
  out.imc_timeline.reserve(imc);
  for (std::uint64_t i = 0; i < imc; ++i) {
    const double t = r->f64();
    const double ghz = r->f64();
    out.imc_timeline.emplace_back(t, ghz);
  }
  const std::uint64_t tl = r->varint();
  out.timeline.reserve(tl);
  for (std::uint64_t i = 0; i < tl; ++i) {
    sim::TimelinePoint p;
    p.t_s = r->f64();
    p.cpu_ghz = r->f64();
    p.imc_ghz = r->f64();
    p.dc_power_w = r->f64();
    out.timeline.push_back(p);
  }
  out.eargm_throttles = r->varint();
  out.eargm_final_limit = r->varint();
  out.fault_report = deserialize_fault_report(r);
  const std::uint64_t events = r->varint();
  out.fault_events.reserve(events);
  for (std::uint64_t i = 0; i < events; ++i) {
    faults::FaultEvent e;
    e.t_s = r->f64();
    e.node = static_cast<std::uint32_t>(r->varint());
    e.family = static_cast<faults::FaultFamily>(r->u8());
    out.fault_events.push_back(e);
  }
  return out;
}

std::string encode_checkpoint(const Checkpoint& c) {
  const std::string payload = encode_payload(c);
  // The length field is u32; a payload over 4 GiB would silently
  // truncate and fail the CRC only at load time, losing the campaign.
  EAR_EXPECT(payload.size() <= 0xFFFFFFFFu);
  ByteWriter w;
  w.raw(kMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(crc32(payload));
  return w.bytes();
}

Checkpoint decode_checkpoint(std::string_view bytes) {
  ByteReader r(bytes);
  if (bytes.size() < kMagic.size() ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    throw WireError("not a checkpoint file (bad magic)");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) (void)r.u8();
  const std::uint32_t len = r.u32();
  // 64-bit on purpose: a corrupted length near UINT32_MAX would wrap a
  // 32-bit `len + 4` to a tiny value and sail past the truncation check.
  if (r.remaining() < static_cast<std::uint64_t>(len) + 4) {
    throw WireError("checkpoint truncated: payload of " +
                    std::to_string(len) + " byte(s) not fully present");
  }
  const std::string_view payload = bytes.substr(r.pos(), len);
  ByteReader tail(bytes.substr(r.pos() + len));
  const std::uint32_t want = tail.u32();
  if (!tail.at_end()) {
    throw WireError("checkpoint has trailing garbage after the CRC");
  }
  if (crc32(payload) != want) {
    throw WireError("checkpoint CRC mismatch (file corrupt)");
  }
  return decode_payload(payload);
}

CheckpointLoad try_load_checkpoint(const std::string& path,
                                   std::string_view expect_stamp,
                                   std::uint64_t expect_fingerprint) {
  CheckpointLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.note = "no checkpoint at " + path;
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  try {
    out.checkpoint = decode_checkpoint(bytes);
  } catch (const std::exception& e) {
    // Catch everything, not just WireError: "forgiving load" is a
    // contract — no file content may crash the serve command, even one
    // that trips a defect in the decoder itself.
    out.note = std::string("ignoring ") + path + ": " + e.what();
    return out;
  }
  if (out.checkpoint.meta.stamp != expect_stamp) {
    out.note = "checkpoint written by a different binary (" +
               out.checkpoint.meta.stamp + "; this binary is " +
               std::string(expect_stamp) +
               "); starting clean — pass the original binary or --fresh";
    out.checkpoint = {};
    return out;
  }
  if (out.checkpoint.meta.fingerprint != expect_fingerprint) {
    out.note =
        "checkpoint belongs to a different campaign grid (spec changed); "
        "starting clean";
    out.checkpoint = {};
    return out;
  }
  out.loaded = true;
  return out;
}

#if defined(__unix__) || defined(__APPLE__)
namespace {
/// Best-effort fsync of a file or directory by path. Failure is not an
/// error: some filesystems reject fsync on directories, and durability
/// beyond the rename is defence in depth, not a correctness invariant
/// (the CRC gate degrades a torn write to "start clean").
void fsync_path(const char* path, bool directory) {
  const int fd = ::open(path, O_RDONLY | (directory ? O_DIRECTORY : 0));
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}
}  // namespace
#endif

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw WireError("cannot open " + tmp + " for writing");
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw WireError("short write to " + tmp);
  }
#if defined(__unix__) || defined(__APPLE__)
  // rename() makes the *name* change atomic, not the data durable: on a
  // power loss the rename can survive while the bytes do not, leaving a
  // zero-length or partial file under a valid name. Sync data before
  // the rename, and the directory entry after it.
  fsync_path(tmp.c_str(), /*directory=*/false);
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw WireError("cannot rename " + tmp + " over " + path);
  }
#if defined(__unix__) || defined(__APPLE__)
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  fsync_path(parent.empty() ? "." : parent.c_str(), /*directory=*/true);
#endif
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw WireError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CheckpointManager::CheckpointManager(std::string path, CheckpointMeta meta,
                                     std::size_t every)
    : path_(std::move(path)),
      meta_(std::move(meta)),
      every_(every == 0 ? 1 : every) {}

void CheckpointManager::adopt(std::vector<SlotRecord> slots) {
  slots_ = std::move(slots);
}

void CheckpointManager::record(std::size_t point, std::size_t run,
                               const sim::RunResult& result) {
  slots_.push_back(SlotRecord{.point = point, .run = run, .result = result});
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (++dirty_ >= every_) flush();
}

void CheckpointManager::flush() {
  Checkpoint c;
  c.meta = meta_;
  c.slots = slots_;
  // Completion order depends on the job count; the file must not. Sort
  // by (point, run) so identical progress always produces identical
  // bytes.
  std::sort(c.slots.begin(), c.slots.end(),
            [](const SlotRecord& a, const SlotRecord& b) {
              return a.point != b.point ? a.point < b.point : a.run < b.run;
            });
  write_file_atomic(path_, encode_checkpoint(c));
  dirty_ = 0;
}

}  // namespace ear::service
