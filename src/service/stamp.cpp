#include "service/stamp.hpp"

// The build system passes these on stamp.cpp's compile line only, so a
// new commit re-compiles one translation unit, not the whole library.
#ifndef EAR_GIT_DESCRIBE
#define EAR_GIT_DESCRIBE "unknown"
#endif
#ifndef EAR_BUILD_TYPE
#define EAR_BUILD_TYPE "unknown"
#endif
#ifndef EAR_COMPILER_ID
#define EAR_COMPILER_ID "unknown"
#endif

namespace ear::service {

std::string BuildStamp::line() const {
  return "git " + git_describe + ", " + build_type + ", " + compiler;
}

const BuildStamp& build_stamp() {
  static const BuildStamp stamp{.git_describe = EAR_GIT_DESCRIBE,
                                .build_type = EAR_BUILD_TYPE,
                                .compiler = EAR_COMPILER_ID};
  return stamp;
}

}  // namespace ear::service
