#include "service/json.hpp"

#include <cmath>

#include "common/csv.hpp"

namespace ear::service {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(2 * has_items_.size(), ' ');
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
    indent();
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had = !has_items_.empty() && has_items_.back();
  has_items_.pop_back();
  if (had) indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had = !has_items_.empty() && has_items_.back();
  has_items_.pop_back();
  if (had) indent();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  after_key_ = true;
}

void JsonWriter::value_str(std::string_view s) {
  separate();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value_double(double v) {
  separate();
  if (std::isfinite(v)) {
    out_ += common::exact_double(v);
  } else {
    // JSON has no NaN/Infinity literals; quoted spellings keep the
    // document valid and parse_exact_double reads them back.
    out_ += '"';
    out_ += common::exact_double(v);
    out_ += '"';
  }
}

void JsonWriter::value_u64(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value_bool(bool v) {
  separate();
  out_ += v ? "true" : "false";
}

}  // namespace ear::service
