// Minimal JSON emitter for the service layer's artifact summaries.
//
// Deliberately a writer only: the artifacts are consumed by people,
// plotting scripts and the bench-guard trajectory tooling, none of which
// need a C++ JSON parser here. Doubles are emitted with
// common::exact_double (shortest round-trip form, locale-independent);
// non-finite values, which JSON cannot represent as numbers, become the
// quoted strings "nan" / "inf" / "-inf" — common::parse_exact_double
// accepts those spellings back.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ear::service {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Key inside an object; must be followed by a value or container.
  void key(std::string_view k);
  void value_str(std::string_view s);
  void value_double(double v);
  void value_u64(std::uint64_t v);
  void value_bool(bool v);

  /// The document built so far. Call after the outermost container
  /// closed; the result ends with a trailing newline.
  [[nodiscard]] std::string str() const { return out_ + "\n"; }

 private:
  void separate();  // comma between siblings
  void indent();

  std::string out_;
  std::vector<bool> has_items_;  // per open container
  bool after_key_ = false;
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ear::service
