// Build/provenance stamp: which binary produced an artifact.
//
// Every artifact directory gets a stamp.json and every checkpoint header
// embeds the one-line form; a checkpoint written by a different binary is
// rejected at load with a clear message instead of silently resuming a
// campaign whose numbers the current code would not reproduce. The values
// are burned in at configure time (see src/service/CMakeLists.txt) and
// fall back to "unknown" outside a git checkout.
#pragma once

#include <string>

namespace ear::service {

struct BuildStamp {
  std::string git_describe;  // `git describe --always --dirty`
  std::string build_type;    // CMAKE_BUILD_TYPE
  std::string compiler;      // compiler id + version

  /// One-line form embedded in binary headers and compared on resume,
  /// e.g. "git 2bb379c, RelWithDebInfo, GNU 12.2.0".
  [[nodiscard]] std::string line() const;
};

/// The stamp of this binary.
[[nodiscard]] const BuildStamp& build_stamp();

}  // namespace ear::service
