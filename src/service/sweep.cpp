#include "service/sweep.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "service/checkpoint.hpp"
#include "service/json.hpp"
#include "service/stamp.hpp"
#include "service/trace.hpp"
#include "sim/presets.hpp"
#include "sim/trace.hpp"
#include "workload/catalog.hpp"
#include "workload/spec_file.hpp"

namespace ear::service {

namespace fs = std::filesystem;
using common::ConfigError;

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= value.size()) {
    const std::size_t comma = value.find(',', from);
    const std::string item = trim(
        value.substr(from, comma == std::string::npos ? std::string::npos
                                                      : comma - from));
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

double parse_number(const std::string& key, const std::string& value,
                    int line) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw ConfigError("sweep spec line " + std::to_string(line) + ": key '" +
                      key + "' expects a number, got '" + value + "'");
  }
  return v;
}

std::size_t parse_whole(const std::string& key, const std::string& value,
                        int line) {
  const double v = parse_number(key, value, line);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
    throw ConfigError("sweep spec line " + std::to_string(line) + ": key '" +
                      key + "' expects a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

void apply(SweepSpec& s, const std::string& key, const std::string& value,
           int line) {
  if (key == "name") {
    s.name = value;
  } else if (key == "apps") {
    s.apps = split_list(value);
  } else if (key == "policies") {
    s.policies = split_list(value);
  } else if (key == "faults") {
    s.faults = split_list(value);
  } else if (key == "runs") {
    s.runs = parse_whole(key, value, line);
  } else if (key == "seed") {
    s.seed = parse_whole(key, value, line);
  } else if (key == "cpu_th") {
    s.cpu_th = parse_number(key, value, line);
  } else if (key == "unc_th") {
    s.unc_th = parse_number(key, value, line);
  } else if (key == "checkpoint_every") {
    s.checkpoint_every = parse_whole(key, value, line);
  } else if (key == "workload_file") {
    s.workload_file = value;
  } else {
    throw ConfigError("sweep spec line " + std::to_string(line) +
                      ": unknown key '" + key + "'");
  }
}

std::string fault_stem(const std::string& path) {
  return fs::path(path).stem().string();
}

workload::AppModel resolve_app(const SweepSpec& spec,
                               const std::string& name) {
  if (spec.workload_file.empty()) return workload::make_app(name);
  for (const auto& e : workload::load_spec_file(spec.workload_file)) {
    if (e.name == name) return workload::make_app(e);
  }
  throw ConfigError("workload '" + name + "' not found in " +
                    spec.workload_file);
}

/// The campaign grid a spec describes, point indices matching
/// sweep_points() order.
std::vector<sim::CampaignPoint> build_points(const SweepSpec& spec) {
  // Fault plans load once per distinct path and are shared across the
  // points that use them.
  std::map<std::string, std::shared_ptr<const faults::FaultPlan>> plans;
  std::vector<sim::CampaignPoint> out;
  for (const SweepPoint& sp : sweep_points(spec)) {
    sim::ExperimentConfig cfg{.app = resolve_app(spec, sp.app),
                              .seed = spec.seed};
    cfg.earl = sim::settings_me_eufs(spec.cpu_th, spec.unc_th);
    cfg.earl.policy = sp.policy;
    if (!sp.fault_plan.empty()) {
      auto [it, inserted] = plans.try_emplace(sp.fault_plan);
      if (inserted) {
        it->second = std::make_shared<const faults::FaultPlan>(
            faults::load_fault_plan(sp.fault_plan));
      }
      cfg.fault_plan = it->second;
    }
    out.push_back(sim::CampaignPoint{
        .label = sp.label, .cfg = std::move(cfg), .runs = spec.runs});
  }
  return out;
}

void write_text_atomic(const fs::path& path, std::string_view text) {
  write_file_atomic(path.string(), text);
}

std::string stamp_json() {
  const BuildStamp& s = build_stamp();
  JsonWriter j;
  j.begin_object();
  j.key("git_describe");
  j.value_str(s.git_describe);
  j.key("build_type");
  j.value_str(s.build_type);
  j.key("compiler");
  j.value_str(s.compiler);
  j.key("stamp");
  j.value_str(s.line());
  j.end_object();
  return j.str();
}

/// Per-run summary.json: the deterministic scalar outcome of one run.
std::string run_summary_json(const std::string& label, std::size_t run,
                             const sim::RunResult& r) {
  JsonWriter j;
  j.begin_object();
  j.key("label");
  j.value_str(label);
  j.key("run");
  j.value_u64(run);
  j.key("stamp");
  j.value_str(build_stamp().line());
  j.key("total_time_s");
  j.value_double(r.total_time_s);
  j.key("total_energy_j");
  j.value_double(r.total_energy_j);
  j.key("avg_dc_power_w");
  j.value_double(r.avg_dc_power_w);
  j.key("avg_pkg_power_w");
  j.value_double(r.avg_pkg_power_w);
  j.key("avg_cpu_ghz");
  j.value_double(r.avg_cpu_ghz);
  j.key("avg_imc_ghz");
  j.value_double(r.avg_imc_ghz);
  j.key("cpi");
  j.value_double(r.cpi);
  j.key("gbps");
  j.value_double(r.gbps);
  j.key("nodes");
  j.value_u64(r.nodes.size());
  j.key("faults_injected");
  j.value_u64(r.fault_report.injected());
  j.key("faults_detected");
  j.value_u64(r.fault_report.detected());
  j.key("faults_recovered");
  j.value_u64(r.fault_report.recovered());
  j.end_object();
  return j.str();
}

/// Final campaign.json. Only deterministic fields: no wall-clock, no
/// thread-seconds — an interrupted-then-resumed sweep must produce the
/// byte-identical file an uninterrupted one does.
std::string campaign_json(const SweepSpec& spec, std::uint64_t fingerprint,
                          const std::vector<sim::CampaignResult>& results) {
  JsonWriter j;
  j.begin_object();
  j.key("name");
  j.value_str(spec.name);
  j.key("stamp");
  j.value_str(build_stamp().line());
  j.key("fingerprint");
  j.value_u64(fingerprint);
  j.key("runs_per_point");
  j.value_u64(spec.runs);
  j.key("seed");
  j.value_u64(spec.seed);
  j.key("points");
  j.begin_array();
  for (const sim::CampaignResult& r : results) {
    j.begin_object();
    j.key("label");
    j.value_str(r.label);
    j.key("completed_runs");
    j.value_u64(r.completed_runs);
    j.key("errors");
    j.value_u64(r.errors.size());
    j.key("total_time_s");
    j.value_double(r.avg.total_time_s);
    j.key("total_energy_j");
    j.value_double(r.avg.total_energy_j);
    j.key("avg_dc_power_w");
    j.value_double(r.avg.avg_dc_power_w);
    j.key("avg_pkg_power_w");
    j.value_double(r.avg.avg_pkg_power_w);
    j.key("avg_cpu_ghz");
    j.value_double(r.avg.avg_cpu_ghz);
    j.key("avg_imc_ghz");
    j.value_double(r.avg.avg_imc_ghz);
    j.key("cpi");
    j.value_double(r.avg.cpi);
    j.key("gbps");
    j.value_double(r.avg.gbps);
    j.key("time_stddev_s");
    j.value_double(r.avg.time_stddev_s);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

/// Write one slot's artifact directory: timeline/nodes CSVs, the scalar
/// summary and the decision trace, each atomically.
void write_run_artifacts(const fs::path& store, const std::string& label,
                         std::size_t point, std::size_t run,
                         std::uint64_t seed, const std::string& app,
                         const std::string& policy,
                         const sim::RunResult& result,
                         TraceRecorder* recorder) {
  const fs::path dir =
      store / label_dir(label) / ("run" + std::to_string(run));
  fs::create_directories(dir);
  {
    std::ostringstream csv;
    sim::write_timeline_csv(result, csv);
    write_text_atomic(dir / "timeline.csv", csv.str());
  }
  {
    std::ostringstream csv;
    sim::write_nodes_csv(result, csv);
    write_text_atomic(dir / "nodes.csv", csv.str());
  }
  write_text_atomic(dir / "summary.json",
                    run_summary_json(label, run, result));
  if (recorder != nullptr) {
    recorder->add_fault_events(result.fault_events);
    const TraceMeta meta{.stamp = build_stamp().line(),
                         .label = label,
                         .app = app,
                         .policy = policy,
                         .point = point,
                         .run = run,
                         .seed = seed};
    write_file_atomic((dir / "trace.bin").string(),
                      recorder->serialize(meta));
  }
}

}  // namespace

std::string label_dir(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == '/') c = '_';
  }
  return out;
}

SweepSpec parse_sweep_spec(std::istream& in) {
  SweepSpec spec;
  std::string line;
  int lineno = 0;
  bool in_sweep = false;
  bool seen_section = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        throw ConfigError("sweep spec line " + std::to_string(lineno) +
                          ": unterminated section header");
      }
      const std::string section = trim(t.substr(1, t.size() - 2));
      if (section != "sweep") {
        throw ConfigError("sweep spec line " + std::to_string(lineno) +
                          ": unknown section '" + section +
                          "' (only [sweep] is defined)");
      }
      in_sweep = true;
      seen_section = true;
      continue;
    }
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("sweep spec line " + std::to_string(lineno) +
                        ": expected 'key = value'");
    }
    if (!in_sweep) {
      throw ConfigError("sweep spec line " + std::to_string(lineno) +
                        ": key outside the [sweep] section");
    }
    apply(spec, trim(t.substr(0, eq)), trim(t.substr(eq + 1)), lineno);
  }
  if (!seen_section) {
    throw ConfigError("sweep spec has no [sweep] section");
  }
  if (spec.apps.empty()) {
    throw ConfigError("sweep spec lists no apps");
  }
  if (spec.policies.empty()) {
    throw ConfigError("sweep spec lists no policies");
  }
  if (spec.runs == 0) {
    throw ConfigError("sweep spec: runs must be at least 1");
  }
  if (spec.faults.empty()) spec.faults = {"none"};
  return spec;
}

SweepSpec load_sweep_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open sweep spec " + path);
  return parse_sweep_spec(in);
}

std::vector<SweepPoint> sweep_points(const SweepSpec& spec) {
  std::vector<SweepPoint> out;
  const bool fault_axis =
      spec.faults.size() > 1 ||
      (spec.faults.size() == 1 && spec.faults[0] != "none");
  for (const std::string& app : spec.apps) {
    for (const std::string& policy : spec.policies) {
      for (const std::string& fault : spec.faults) {
        SweepPoint p;
        p.app = app;
        p.policy = policy;
        p.label = app + "/" + policy;
        if (fault != "none") p.fault_plan = fault;
        if (fault_axis) {
          p.label +=
              "/" + (fault == "none" ? std::string("none")
                                     : fault_stem(fault));
        }
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

SweepOutcome run_sweep(const SweepSpec& spec, const std::string& store_dir,
                       const SweepOptions& opts) {
  SweepOutcome outcome;
  outcome.store = store_dir;
  const fs::path store(store_dir);
  fs::create_directories(store);
  write_text_atomic(store / "stamp.json", stamp_json());
  if (!opts.spec_text.empty()) {
    write_text_atomic(store / "sweep.ini", opts.spec_text);
  }

  const std::vector<SweepPoint> points = sweep_points(spec);
  std::vector<sim::CampaignPoint> grid = build_points(spec);
  outcome.total = grid.size() * spec.runs;

  const std::uint64_t fingerprint = campaign_fingerprint(grid);
  const std::string ckpt_path = (store / "campaign.ckpt").string();
  CheckpointMeta meta;
  meta.stamp = build_stamp().line();
  meta.fingerprint = fingerprint;
  meta.total_slots = outcome.total;
  CheckpointManager manager(ckpt_path, meta, spec.checkpoint_every);

  if (!opts.fresh) {
    CheckpointLoad load =
        try_load_checkpoint(ckpt_path, meta.stamp, fingerprint);
    outcome.note = load.note;
    if (load.loaded) {
      outcome.restored = load.checkpoint.slots.size();
      manager.adopt(std::move(load.checkpoint.slots));
    }
  }

  // The campaign hooks. on_slot_complete runs serialised under the
  // campaign's internal mutex; everything here is keyed by (point, run),
  // so completion order — which depends on the job count — only decides
  // *when* an artifact is written, never what it contains.
  sim::CampaignOptions copts;
  copts.jobs = opts.jobs;
  copts.progress = opts.progress;
  // A crash is a finding, not a reason to lose the rest of the grid.
  copts.capture_errors = true;
  copts.observe = [](std::size_t, std::size_t) {
    return std::make_unique<TraceRecorder>();
  };
  copts.on_slot_complete = [&](std::size_t point, std::size_t run,
                               const sim::RunResult& result,
                               sim::RunObserver* obs) {
    if (opts.slot_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.slot_delay_ms));
    }
    const SweepPoint& sp = points[point];
    write_run_artifacts(store, sp.label, point, run, spec.seed, sp.app,
                        sp.policy, result,
                        static_cast<TraceRecorder*>(obs));
    manager.record(point, run, result);
  };
  if (opts.halt_after_slots > 0) {
    copts.should_stop = [&manager, halt = opts.halt_after_slots] {
      return manager.recorded() >= halt;
    };
  }

  sim::Campaign campaign(copts);
  for (sim::CampaignPoint& p : grid) campaign.add(std::move(p));
  for (const SlotRecord& s : manager.slots()) {
    campaign.preload(s.point, s.run, s.result);
  }

  const std::vector<sim::CampaignResult>& results = campaign.run();
  manager.flush();
  outcome.interrupted = campaign.interrupted();
  for (const sim::CampaignResult& r : results) {
    outcome.completed += r.completed_runs;
  }
  write_text_atomic(store / "campaign.json",
                    campaign_json(spec, fingerprint, results));
  return outcome;
}

}  // namespace ear::service
