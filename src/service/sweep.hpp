// Sweep orchestrator: run a policy × workload × fault grid from an INI
// spec into a per-machine artifact store, crash-safely.
//
// The store directory is the campaign's persistent job queue: every
// completed (point, run) slot lands in the checkpoint (atomic snapshot,
// see service/checkpoint.hpp) and its artifacts land in a per-run
// directory. A campaign killed at any moment — SIGKILL included — resumes
// from the newest valid checkpoint, skips the completed slots, and
// produces a final report bitwise identical to an uninterrupted run, at
// any job count.
//
// Store layout:
//
//   <store>/sweep.ini            copy of the spec that ran
//   <store>/stamp.json           build/provenance stamp of the binary
//   <store>/campaign.ckpt        crash-safe progress snapshot
//   <store>/campaign.json        final sweep summary (deterministic)
//   <store>/<point-label>/runN/  per-run artifacts:
//       timeline.csv  nodes.csv  summary.json  trace.bin
//
// Spec format (INI, # or ; comments):
//
//   [sweep]
//   name = demo
//   apps = bqcd, lulesh          # workload catalog names
//   policies = min_energy_eufs, min_time_eufs
//   faults = none, plans/x.plan  # optional fault-plan axis
//   runs = 3
//   seed = 1
//   cpu_th = 0.05
//   unc_th = 0.02
//   checkpoint_every = 4         # snapshot every N completed slots
//   workload_file = specs.ini    # optional custom workload definitions
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace ear::service {

struct SweepSpec {
  std::string name = "sweep";
  std::vector<std::string> apps;
  std::vector<std::string> policies;
  /// Fault-plan axis: "none" (or empty) = fault-free. Paths are
  /// resolved relative to the working directory.
  std::vector<std::string> faults = {"none"};
  std::size_t runs = 3;
  std::uint64_t seed = 1;
  double cpu_th = 0.05;
  double unc_th = 0.02;
  std::size_t checkpoint_every = 4;
  std::string workload_file;
};

/// Parse a sweep spec. Throws common::ConfigError on syntax errors,
/// unknown keys, invalid values, or a grid with no points.
[[nodiscard]] SweepSpec parse_sweep_spec(std::istream& in);
[[nodiscard]] SweepSpec load_sweep_spec(const std::string& path);

/// One grid point, app-major then policy then fault — a deterministic
/// order, so point indices are stable across processes.
struct SweepPoint {
  std::string label;  // "app/policy" or "app/policy/fault-stem"
  std::string app;
  std::string policy;
  std::string fault_plan;  // path; empty = fault-free
};

[[nodiscard]] std::vector<SweepPoint> sweep_points(const SweepSpec& spec);

struct SweepOptions {
  std::size_t jobs = 0;  // 0 = EAR_SIM_JOBS / all cores
  /// Ignore any existing checkpoint and start over.
  bool fresh = false;
  /// Per-point progress lines on stderr.
  bool progress = false;
  /// Test hook: request an orderly stop after this many slots completed
  /// in this process (0 = run to completion). The checkpoint is flushed
  /// before returning, so a resume continues from here.
  std::size_t halt_after_slots = 0;
  /// Test hook: sleep this long in every slot's completion callback,
  /// widening the window in which a kill lands mid-campaign.
  std::uint32_t slot_delay_ms = 0;
  /// Verbatim spec text to persist as <store>/sweep.ini (empty = skip).
  std::string spec_text;
};

struct SweepOutcome {
  std::string store;        // the artifact store directory
  std::size_t total = 0;    // (point, run) slots in the full grid
  std::size_t restored = 0; // slots restored from the checkpoint
  std::size_t completed = 0;  // slots complete at exit (restored + new)
  bool interrupted = false;   // halt_after_slots stopped the campaign
  std::string note;           // checkpoint-load explanation, if any
};

/// Execute the sweep into `store_dir` (created if missing), resuming
/// from <store>/campaign.ckpt unless opts.fresh.
[[nodiscard]] SweepOutcome run_sweep(const SweepSpec& spec,
                                     const std::string& store_dir,
                                     const SweepOptions& opts);

/// Sanitised directory name for a point label ('/' → '_').
[[nodiscard]] std::string label_dir(const std::string& label);

}  // namespace ear::service
