// Record/replay traces: a compact, seekable, chunked binary format for
// per-iteration policy decisions.
//
// A trace records what the runtime *decided* every iteration of a run —
// the (f_cpu, f_imc) operating point, the DC power it produced, the EARL
// state machine's state and signature count — plus phase boundaries and
// injected fault events. Values are quantised deterministically
// (microseconds, kHz, milliwatts), so two runs with the same seed
// produce byte-identical traces and `trace diff` of a changed policy
// pinpoints the first diverging decision.
//
// File layout (all integers little-endian):
//
//   magic     "EARTRC01"                          8 bytes
//   header    u32 length + payload + u32 CRC
//             (format version, build stamp, run coordinates)
//   chunks    u32 length + payload + u32 CRC, repeated
//             payload: first event index, count, delta-coded events
//   directory u32 length + payload + u32 CRC
//             per chunk: first index, count, absolute file offset
//   footer    u64 directory offset + "EARTRCEN"   16 bytes
//
// Delta encoding resets at every chunk boundary, so each chunk decodes
// independently: TraceReader seeks by binary-searching the directory and
// decoding one chunk, not the whole file.
//
// Versioning rules: kTraceFormatVersion is bumped on any layout change;
// readers reject other versions outright (traces are cheap to re-record,
// silent misreads are not). The build stamp in the header is advisory
// for traces — diffing across binaries is exactly the cross-version
// regression use case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "faults/report.hpp"
#include "service/wire.hpp"
#include "sim/experiment.hpp"

namespace ear::service {

inline constexpr std::uint32_t kTraceFormatVersion = 1;

enum class TraceEventKind : std::uint8_t {
  kPhase = 1,      // a phase begins
  kIteration = 2,  // one iteration's decision sample
  kFault = 3,      // an injected fault fired
};

/// One trace event. A tagged union flattened into a struct: which fields
/// are meaningful depends on `kind` (the others stay at their defaults,
/// so operator== is still an exact stream comparison).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kIteration;
  // kPhase
  std::uint64_t phase = 0;       // also set on kIteration
  std::uint64_t iterations = 0;  // phase length
  // kIteration
  std::uint64_t iteration = 0;  // global iteration index
  std::int64_t t_us = 0;        // simulated clock, µs (also kFault)
  common::Freq cpu_freq;
  common::Freq imc_freq;
  std::uint64_t milliwatts = 0;  // DC power, quantised
  std::uint8_t earl_state = 0;   // EarlSession::State + 1; 0 = detached
  std::uint64_t signatures = 0;
  // kFault
  std::uint32_t node = 0;
  std::uint8_t family = 0;  // faults::FaultFamily

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Header metadata identifying the recorded run.
struct TraceMeta {
  std::string stamp;   // writer's BuildStamp::line()
  std::string label;   // campaign point label
  std::string app;
  std::string policy;
  std::uint64_t point = 0;
  std::uint64_t run = 0;
  std::uint64_t seed = 0;

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

/// Builds a trace file in memory, sealing a chunk every `chunk_events`
/// events. finish() appends the directory and footer and returns the
/// complete file bytes (write them with write_file_atomic).
class TraceWriter {
 public:
  explicit TraceWriter(TraceMeta meta, std::size_t chunk_events = 512);

  void add(const TraceEvent& e);
  [[nodiscard]] std::string finish();

 private:
  void seal_chunk();

  struct DirEntry {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::uint64_t offset = 0;
  };

  std::size_t chunk_events_;
  std::string file_;              // header + sealed chunks so far
  std::vector<DirEntry> dir_;
  std::vector<TraceEvent> open_;  // events of the unsealed chunk
  std::uint64_t total_ = 0;
};

/// Random-access reader. Validates the footer, directory and (lazily,
/// on first touch) each chunk's CRC; caches the last decoded chunk, so
/// sequential scans decode every chunk exactly once.
class TraceReader {
 public:
  /// Takes ownership of the file bytes; throws WireError on any defect
  /// of the fixed structures (magic, footer, directory, header).
  explicit TraceReader(std::string bytes);

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint64_t event_count() const { return total_; }
  /// Event `i` (seek + chunk decode on miss); throws WireError on a
  /// corrupt chunk or out-of-range index.
  [[nodiscard]] const TraceEvent& at(std::uint64_t i);

 private:
  struct DirEntry {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::uint64_t offset = 0;
  };

  void load_chunk(std::size_t idx);

  std::string bytes_;
  TraceMeta meta_;
  std::vector<DirEntry> dir_;
  std::uint64_t total_ = 0;
  std::size_t cached_chunk_ = SIZE_MAX;
  std::vector<TraceEvent> cache_;
};

/// One located divergence between two traces.
struct TraceDiffEntry {
  std::uint64_t index = 0;  // event index where the streams differ
  std::string what;         // human-readable field-level description
};

struct TraceDiff {
  /// First `limit` divergences (event-by-event; a length mismatch adds
  /// one entry at the shorter stream's end).
  std::vector<TraceDiffEntry> entries;
  std::uint64_t a_events = 0;
  std::uint64_t b_events = 0;
  bool meta_differs = false;

  [[nodiscard]] bool identical() const {
    return entries.empty() && a_events == b_events;
  }
};

/// Compare two traces event by event (metadata differences are reported
/// but do not count as divergence — cross-binary diffing is the point).
[[nodiscard]] TraceDiff diff_traces(TraceReader& a, TraceReader& b,
                                    std::size_t limit = 16);

/// Render an event as a one-line string ("iter 42 @ 1.234567s cpu
/// 2.4GHz imc 2.0GHz ..."), shared by `trace dump` and diff output.
[[nodiscard]] std::string describe_event(const TraceEvent& e);

/// The record side: a sim::RunObserver that quantises the engine's
/// observation stream into trace events. After the run, append the
/// result's fault timeline with add_fault_events, then serialize().
class TraceRecorder : public sim::RunObserver {
 public:
  void phase_begin(std::size_t phase, std::size_t iterations) override;
  void iteration(const IterationSample& sample) override;

  void add_fault_events(const std::vector<faults::FaultEvent>& events);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::string serialize(const TraceMeta& meta,
                                      std::size_t chunk_events = 512) const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t phase_ = 0;
};

/// Deterministic quantisation shared by recorder and tests.
[[nodiscard]] std::int64_t quantise_us(double seconds);
[[nodiscard]] std::uint64_t quantise_milliwatts(common::Power p);

}  // namespace ear::service
