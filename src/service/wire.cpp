#include "service/wire.hpp"

#include <array>
#include <bit>

#include "common/contracts.hpp"

namespace ear::service {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::f64(double v) {
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80u) {
    buf_.push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  // Zigzag: small magnitudes of either sign map to small codes.
  const auto u = static_cast<std::uint64_t>(v);
  varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.append(s);
}

void ByteWriter::raw(std::string_view bytes) {
  buf_.append(bytes);
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw WireError("truncated record: need " + std::to_string(n) +
                    " byte(s) at offset " + std::to_string(pos_) +
                    ", have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(view_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(view_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(view_[pos_++]))
         << (8 * i);
  }
  return v;
}

double ByteReader::f64() {
  return std::bit_cast<double>(u64());
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = u8();
    // Contract, not just loop bound: a u64 shift by >= 64 is UB, so the
    // safety of the `<<` below must not depend on the loop header alone.
    EAR_EXPECT(shift < 64);
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
  }
  throw WireError("varint longer than 64 bits at offset " +
                  std::to_string(pos_));
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t u = varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1u) + 1u));
}

std::string ByteReader::str() {
  const std::uint64_t n = varint();
  require(n);
  std::string s(view_.substr(pos_, n));
  pos_ += n;
  return s;
}

}  // namespace ear::service
