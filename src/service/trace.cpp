#include "service/trace.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace ear::service {

namespace {

constexpr std::string_view kMagic = "EARTRC01";
constexpr std::string_view kTailMagic = "EARTRCEN";

/// Delta state for one chunk; reset at every chunk boundary so chunks
/// decode independently.
struct DeltaState {
  std::uint64_t iteration = 0;
  std::int64_t t_us = 0;
  std::uint64_t cpu_khz = 0;
  std::uint64_t imc_khz = 0;
  std::uint64_t milliwatts = 0;
  std::uint64_t signatures = 0;
};

std::int64_t delta_u64(std::uint64_t now, std::uint64_t prev) {
  return static_cast<std::int64_t>(now) - static_cast<std::int64_t>(prev);
}

void encode_event(ByteWriter* w, const TraceEvent& e, DeltaState* st) {
  w->u8(static_cast<std::uint8_t>(e.kind));
  switch (e.kind) {
    case TraceEventKind::kPhase:
      w->varint(e.phase);
      w->varint(e.iterations);
      break;
    case TraceEventKind::kIteration:
      w->varint(e.phase);
      w->svarint(delta_u64(e.iteration, st->iteration));
      w->svarint(e.t_us - st->t_us);
      w->svarint(delta_u64(e.cpu_freq.as_khz(), st->cpu_khz));
      w->svarint(delta_u64(e.imc_freq.as_khz(), st->imc_khz));
      w->svarint(delta_u64(e.milliwatts, st->milliwatts));
      w->u8(e.earl_state);
      w->svarint(delta_u64(e.signatures, st->signatures));
      st->iteration = e.iteration;
      st->t_us = e.t_us;
      st->cpu_khz = e.cpu_freq.as_khz();
      st->imc_khz = e.imc_freq.as_khz();
      st->milliwatts = e.milliwatts;
      st->signatures = e.signatures;
      break;
    case TraceEventKind::kFault:
      // Fault events sit outside the iteration delta chain (they are
      // appended after the run, with the clock rewound); absolute time.
      w->svarint(e.t_us);
      w->varint(e.node);
      w->u8(e.family);
      break;
  }
}

TraceEvent decode_event(ByteReader* r, DeltaState* st) {
  TraceEvent e;
  const std::uint8_t kind = r->u8();
  if (kind < 1 || kind > 3) {
    throw WireError("unknown trace event kind " + std::to_string(kind));
  }
  e.kind = static_cast<TraceEventKind>(kind);
  switch (e.kind) {
    case TraceEventKind::kPhase:
      e.phase = r->varint();
      e.iterations = r->varint();
      break;
    case TraceEventKind::kIteration: {
      e.phase = r->varint();
      e.iteration = st->iteration + static_cast<std::uint64_t>(r->svarint());
      e.t_us = st->t_us + r->svarint();
      const auto khz = [](std::uint64_t prev, std::int64_t d) {
        return common::Freq::khz(prev + static_cast<std::uint64_t>(d));
      };
      e.cpu_freq = khz(st->cpu_khz, r->svarint());
      e.imc_freq = khz(st->imc_khz, r->svarint());
      e.milliwatts =
          st->milliwatts + static_cast<std::uint64_t>(r->svarint());
      e.earl_state = r->u8();
      e.signatures =
          st->signatures + static_cast<std::uint64_t>(r->svarint());
      st->iteration = e.iteration;
      st->t_us = e.t_us;
      st->cpu_khz = e.cpu_freq.as_khz();
      st->imc_khz = e.imc_freq.as_khz();
      st->milliwatts = e.milliwatts;
      st->signatures = e.signatures;
      break;
    }
    case TraceEventKind::kFault:
      e.t_us = r->svarint();
      e.node = static_cast<std::uint32_t>(r->varint());
      e.family = r->u8();
      break;
  }
  return e;
}

// ear_lint wire-pair: append_block checked_block
void append_block(std::string* file, std::string_view payload) {
  // The length field is u32; a payload over 4 GiB would silently
  // truncate and desync every offset in the directory after it.
  EAR_EXPECT(payload.size() <= 0xFFFFFFFFu);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(crc32(payload));
  file->append(w.bytes());
}

/// Read a u32-length + payload + u32-CRC block starting at `offset`.
std::string_view checked_block(std::string_view bytes, std::size_t offset,
                               const char* what) {
  ByteReader r(bytes.substr(offset));
  const std::uint32_t len = r.u32();
  // 64-bit on purpose: a corrupted length near UINT32_MAX would wrap a
  // 32-bit `len + 4` to a tiny value and sail past the truncation check.
  if (r.remaining() < static_cast<std::uint64_t>(len) + 4) {
    throw WireError(std::string(what) + " truncated");
  }
  const std::string_view payload = bytes.substr(offset + 4, len);
  ByteReader tail(bytes.substr(offset + 4 + len, 4));
  if (crc32(payload) != tail.u32()) {
    throw WireError(std::string(what) + " CRC mismatch (file corrupt)");
  }
  return payload;
}

}  // namespace

std::int64_t quantise_us(double seconds) {
  return std::llround(seconds * 1e6);
}

std::uint64_t quantise_milliwatts(common::Power p) {
  const long long mw = std::llround(p.value * 1000.0);
  return mw > 0 ? static_cast<std::uint64_t>(mw) : 0;
}

TraceWriter::TraceWriter(TraceMeta meta, std::size_t chunk_events)
    : chunk_events_(chunk_events == 0 ? 1 : chunk_events) {
  file_.append(kMagic);
  ByteWriter h;
  h.u32(kTraceFormatVersion);
  h.str(meta.stamp);
  h.str(meta.label);
  h.str(meta.app);
  h.str(meta.policy);
  h.varint(meta.point);
  h.varint(meta.run);
  h.u64(meta.seed);
  append_block(&file_, h.bytes());
}

void TraceWriter::add(const TraceEvent& e) {
  open_.push_back(e);
  if (open_.size() >= chunk_events_) seal_chunk();
}

// ear_lint wire-pair: seal_chunk load_chunk
void TraceWriter::seal_chunk() {
  if (open_.empty()) return;
  DirEntry entry;
  entry.first = total_;
  entry.count = open_.size();
  entry.offset = file_.size();
  ByteWriter w;
  w.varint(entry.first);
  w.varint(entry.count);
  DeltaState st;
  for (const TraceEvent& e : open_) encode_event(&w, e, &st);
  append_block(&file_, w.bytes());
  dir_.push_back(entry);
  total_ += open_.size();
  open_.clear();
}

std::string TraceWriter::finish() {
  seal_chunk();
  const std::uint64_t dir_offset = file_.size();
  ByteWriter d;
  d.varint(dir_.size());
  for (const DirEntry& e : dir_) {
    d.varint(e.first);
    d.varint(e.count);
    d.u64(e.offset);
  }
  append_block(&file_, d.bytes());
  ByteWriter f;
  f.u64(dir_offset);
  f.raw(kTailMagic);
  file_.append(f.bytes());
  return std::move(file_);
}

TraceReader::TraceReader(std::string bytes) : bytes_(std::move(bytes)) {
  const std::size_t footer = 16;
  if (bytes_.size() < kMagic.size() + footer ||
      std::string_view(bytes_).substr(0, kMagic.size()) != kMagic) {
    throw WireError("not a trace file (bad magic)");
  }
  if (std::string_view(bytes_).substr(bytes_.size() - kTailMagic.size()) !=
      kTailMagic) {
    throw WireError("trace footer missing (file truncated?)");
  }
  ByteReader foot(
      std::string_view(bytes_).substr(bytes_.size() - footer, 8));
  const std::uint64_t dir_offset = foot.u64();
  // Subtraction, not `dir_offset + 8 > size`: a corrupted offset near
  // UINT64_MAX would wrap the addition (size >= 24 was checked above).
  if (dir_offset < kMagic.size() || dir_offset > bytes_.size() - 8) {
    throw WireError("trace directory offset out of range");
  }

  const std::string_view header =
      checked_block(bytes_, kMagic.size(), "trace header");
  ByteReader h(header);
  const std::uint32_t format = h.u32();
  if (format != kTraceFormatVersion) {
    throw WireError("trace format v" + std::to_string(format) +
                    " (this binary reads v" +
                    std::to_string(kTraceFormatVersion) + ")");
  }
  meta_.stamp = h.str();
  meta_.label = h.str();
  meta_.app = h.str();
  meta_.policy = h.str();
  meta_.point = h.varint();
  meta_.run = h.varint();
  meta_.seed = h.u64();

  const std::string_view dir =
      checked_block(bytes_, dir_offset, "trace directory");
  ByteReader d(dir);
  const std::uint64_t chunks = d.varint();
  dir_.reserve(chunks);
  for (std::uint64_t i = 0; i < chunks; ++i) {
    DirEntry e;
    e.first = d.varint();
    e.count = d.varint();
    e.offset = d.u64();
    if (e.first != total_) {
      throw WireError("trace directory indices are not contiguous");
    }
    if (e.offset > bytes_.size() - 8) {  // subtraction: no u64 wrap
      throw WireError("trace chunk offset out of range");
    }
    total_ += e.count;
    dir_.push_back(e);
  }
}

void TraceReader::load_chunk(std::size_t idx) {
  const DirEntry& entry = dir_[idx];
  const std::string_view payload =
      checked_block(bytes_, entry.offset, "trace chunk");
  ByteReader r(payload);
  if (r.varint() != entry.first || r.varint() != entry.count) {
    throw WireError("trace chunk header disagrees with the directory");
  }
  std::vector<TraceEvent> events;
  events.reserve(entry.count);
  DeltaState st;
  for (std::uint64_t i = 0; i < entry.count; ++i) {
    events.push_back(decode_event(&r, &st));
  }
  if (!r.at_end()) {
    throw WireError("trace chunk has trailing garbage");
  }
  cache_ = std::move(events);
  cached_chunk_ = idx;
}

const TraceEvent& TraceReader::at(std::uint64_t i) {
  if (i >= total_) {
    throw WireError("trace event index " + std::to_string(i) +
                    " out of range (have " + std::to_string(total_) + ")");
  }
  if (cached_chunk_ == SIZE_MAX || i < dir_[cached_chunk_].first ||
      i >= dir_[cached_chunk_].first + dir_[cached_chunk_].count) {
    // Binary search the directory for the chunk containing i.
    std::size_t lo = 0;
    std::size_t hi = dir_.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (dir_[mid].first <= i) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    load_chunk(lo);
  }
  return cache_[i - dir_[cached_chunk_].first];
}

std::string describe_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kPhase:
      return "phase " + std::to_string(e.phase) + " begin (" +
             std::to_string(e.iterations) + " iterations)";
    case TraceEventKind::kIteration:
      return "iter " + std::to_string(e.iteration) + " phase " +
             std::to_string(e.phase) + " t=" + std::to_string(e.t_us) +
             "us cpu=" + e.cpu_freq.str() + " imc=" + e.imc_freq.str() +
             " p=" + std::to_string(e.milliwatts) +
             "mW state=" + std::to_string(e.earl_state) +
             " sig=" + std::to_string(e.signatures);
    case TraceEventKind::kFault:
      return "fault family=" + std::to_string(e.family) + " node=" +
             std::to_string(e.node) + " t=" + std::to_string(e.t_us) + "us";
  }
  return "?";
}

namespace {

void describe_field_diffs(const TraceEvent& a, const TraceEvent& b,
                          std::string* out) {
  const auto field = [out](const char* name, std::uint64_t va,
                           std::uint64_t vb) {
    if (va == vb) return;
    if (!out->empty()) *out += ", ";
    *out += std::string(name) + " " + std::to_string(va) + " vs " +
            std::to_string(vb);
  };
  field("kind", static_cast<std::uint64_t>(a.kind),
        static_cast<std::uint64_t>(b.kind));
  field("phase", a.phase, b.phase);
  field("iterations", a.iterations, b.iterations);
  field("iteration", a.iteration, b.iteration);
  if (a.t_us != b.t_us) {
    if (!out->empty()) *out += ", ";
    *out += "t_us " + std::to_string(a.t_us) + " vs " +
            std::to_string(b.t_us);
  }
  field("cpu_khz", a.cpu_freq.as_khz(), b.cpu_freq.as_khz());
  field("imc_khz", a.imc_freq.as_khz(), b.imc_freq.as_khz());
  field("milliwatts", a.milliwatts, b.milliwatts);
  field("earl_state", a.earl_state, b.earl_state);
  field("signatures", a.signatures, b.signatures);
  field("node", a.node, b.node);
  field("family", a.family, b.family);
}

}  // namespace

TraceDiff diff_traces(TraceReader& a, TraceReader& b, std::size_t limit) {
  TraceDiff d;
  d.a_events = a.event_count();
  d.b_events = b.event_count();
  TraceMeta ma = a.meta();
  TraceMeta mb = b.meta();
  // Stamp differences are the cross-version use case, not a divergence.
  ma.stamp.clear();
  mb.stamp.clear();
  d.meta_differs = !(ma == mb);
  const std::uint64_t n = d.a_events < d.b_events ? d.a_events : d.b_events;
  for (std::uint64_t i = 0; i < n && d.entries.size() < limit; ++i) {
    const TraceEvent& ea = a.at(i);
    const TraceEvent& eb = b.at(i);
    if (ea == eb) continue;
    std::string what;
    describe_field_diffs(ea, eb, &what);
    d.entries.push_back(TraceDiffEntry{.index = i, .what = what});
  }
  if (d.a_events != d.b_events && d.entries.size() < limit) {
    d.entries.push_back(TraceDiffEntry{
        .index = n, .what = "stream lengths differ: " +
                                std::to_string(d.a_events) + " vs " +
                                std::to_string(d.b_events) + " events"});
  }
  return d;
}

void TraceRecorder::phase_begin(std::size_t phase, std::size_t iterations) {
  phase_ = phase;
  TraceEvent e;
  e.kind = TraceEventKind::kPhase;
  e.phase = phase;
  e.iterations = iterations;
  events_.push_back(e);
}

void TraceRecorder::iteration(const IterationSample& sample) {
  TraceEvent e;
  e.kind = TraceEventKind::kIteration;
  e.phase = sample.phase;
  e.iteration = sample.iteration;
  e.t_us = quantise_us(sample.t_s);
  e.cpu_freq = sample.cpu_freq;
  e.imc_freq = sample.imc_freq;
  e.milliwatts = quantise_milliwatts(sample.dc_power);
  e.earl_state = sample.earl_state;
  e.signatures = sample.signatures;
  events_.push_back(e);
}

void TraceRecorder::add_fault_events(
    const std::vector<faults::FaultEvent>& events) {
  for (const faults::FaultEvent& f : events) {
    TraceEvent e;
    e.kind = TraceEventKind::kFault;
    e.t_us = quantise_us(f.t_s);
    e.node = f.node;
    e.family = static_cast<std::uint8_t>(f.family);
    events_.push_back(e);
  }
}

std::string TraceRecorder::serialize(const TraceMeta& meta,
                                     std::size_t chunk_events) const {
  TraceWriter w(meta, chunk_events);
  for (const TraceEvent& e : events_) w.add(e);
  return w.finish();
}

}  // namespace ear::service
