// EARDBD: EAR's database daemon — the accounting aggregation layer.
//
// Node daemons report per-job records (see Accounting); EARDBD collects
// them cluster-wide and answers the queries operators actually run:
// per-application and per-policy energy aggregates, top consumers, and
// export/import for long-term storage.
#pragma once

#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "eard/accounting.hpp"

namespace ear::eard {

/// Aggregate over a group of job records.
struct AggregateStats {
  std::size_t jobs = 0;          // distinct job ids
  std::size_t node_records = 0;  // per-node records
  double total_energy_j = 0.0;
  double total_node_seconds = 0.0;
  [[nodiscard]] double avg_power_w() const {
    return total_node_seconds > 0.0 ? total_energy_j / total_node_seconds
                                    : 0.0;
  }
};

class JobDatabase {
 public:
  /// Ingest all records of an accounting instance (idempotent per record
  /// identity is NOT checked; callers ingest each run once).
  void ingest(const Accounting& accounting);
  void ingest(const JobRecord& record);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Aggregates grouped by application / policy name.
  [[nodiscard]] std::map<std::string, AggregateStats> by_application() const;
  [[nodiscard]] std::map<std::string, AggregateStats> by_policy() const;

  /// The `n` applications with the highest total energy, descending.
  [[nodiscard]] std::vector<std::pair<std::string, double>> top_consumers(
      std::size_t n) const;

  /// Records matching an application name (empty = all).
  [[nodiscard]] std::vector<JobRecord> query(const std::string& app) const;

  /// CSV persistence (same columns as Accounting::write_csv plus the
  /// clock/counter fields needed to rebuild records).
  void save(std::ostream& out) const;
  void load(std::istream& in);  // appends; throws ConfigError on bad input

 private:
  std::vector<JobRecord> records_;
};

}  // namespace ear::eard
