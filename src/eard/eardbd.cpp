#include "eard/eardbd.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace ear::eard {

using common::ConfigError;

void JobDatabase::ingest(const Accounting& accounting) {
  for (const auto& r : accounting.records()) ingest(r);
}

void JobDatabase::ingest(const JobRecord& record) {
  records_.push_back(record);
}

namespace {
template <typename KeyFn>
std::map<std::string, AggregateStats> group_by(
    const std::vector<JobRecord>& records, KeyFn key) {
  std::map<std::string, AggregateStats> out;
  std::map<std::string, std::set<std::uint64_t>> job_ids;
  for (const auto& r : records) {
    AggregateStats& s = out[key(r)];
    ++s.node_records;
    s.total_energy_j += r.energy_j();
    s.total_node_seconds += r.elapsed_s();
    job_ids[key(r)].insert(r.job_id);
  }
  for (auto& [k, s] : out) s.jobs = job_ids[k].size();
  return out;
}
}  // namespace

std::map<std::string, AggregateStats> JobDatabase::by_application() const {
  return group_by(records_, [](const JobRecord& r) { return r.app_name; });
}

std::map<std::string, AggregateStats> JobDatabase::by_policy() const {
  return group_by(records_,
                  [](const JobRecord& r) { return r.policy_name; });
}

std::vector<std::pair<std::string, double>> JobDatabase::top_consumers(
    std::size_t n) const {
  std::vector<std::pair<std::string, double>> all;
  for (const auto& [app, stats] : by_application()) {
    all.emplace_back(app, stats.total_energy_j);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<JobRecord> JobDatabase::query(const std::string& app) const {
  std::vector<JobRecord> out;
  for (const auto& r : records_) {
    if (app.empty() || r.app_name == app) out.push_back(r);
  }
  return out;
}

void JobDatabase::save(std::ostream& out) const {
  common::CsvWriter csv(out);
  csv.header({"job_id", "app", "policy", "node", "start_s", "end_s",
              "start_j", "end_j"});
  for (const auto& r : records_) {
    csv.row({std::to_string(r.job_id), r.app_name, r.policy_name,
             std::to_string(r.node_index),
             common::CsvWriter::num(r.start_clock_s, 6),
             common::CsvWriter::num(r.end_clock_s, 6),
             std::to_string(r.start_joules), std::to_string(r.end_joules)});
  }
}

void JobDatabase::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind("job_id,app,policy,node", 0) != 0) {
    throw ConfigError("job database: missing/invalid CSV header");
  }
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // The exported fields never contain quoted separators; a plain split
    // is sufficient for this format.
    std::vector<std::string> fields;
    std::istringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 8) {
      throw ConfigError("job database line " + std::to_string(line_no) +
                        ": expected 8 fields");
    }
    try {
      JobRecord r;
      r.job_id = std::stoull(fields[0]);
      r.app_name = fields[1];
      r.policy_name = fields[2];
      r.node_index = std::stoul(fields[3]);
      r.start_clock_s = std::stod(fields[4]);
      r.end_clock_s = std::stod(fields[5]);
      r.start_joules = std::stoull(fields[6]);
      r.end_joules = std::stoull(fields[7]);
      records_.push_back(std::move(r));
    } catch (const std::exception&) {
      throw ConfigError("job database line " + std::to_string(line_no) +
                        ": malformed field");
    }
  }
}

}  // namespace ear::eard
