// Per-job energy accounting (the EAR "accounting" service): records what
// each job consumed on each node, as EARD reports to the EAR database.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "simhw/node.hpp"

namespace ear::eard {

struct JobRecord {
  std::uint64_t job_id = 0;
  std::string app_name;
  std::string policy_name;
  std::size_t node_index = 0;
  double start_clock_s = 0.0;
  double end_clock_s = 0.0;
  std::uint64_t start_joules = 0;  // INM counter at start
  std::uint64_t end_joules = 0;

  [[nodiscard]] double elapsed_s() const { return end_clock_s - start_clock_s; }
  [[nodiscard]] double energy_j() const {
    return static_cast<double>(end_joules - start_joules);
  }
  [[nodiscard]] double avg_power_w() const {
    return elapsed_s() > 0.0 ? energy_j() / elapsed_s() : 0.0;
  }
};

/// Collects job records across nodes; one instance per experiment.
class Accounting {
 public:
  /// Open a record for (job, node); returns the record index.
  std::size_t job_started(std::uint64_t job_id, const std::string& app,
                          const std::string& policy, std::size_t node_index,
                          const simhw::SimNode& node);
  void job_ended(std::size_t record_index, const simhw::SimNode& node);

  [[nodiscard]] const std::vector<JobRecord>& records() const {
    return records_;
  }
  /// Total energy across all closed records of a job.
  [[nodiscard]] double job_energy_j(std::uint64_t job_id) const;

  void write_csv(std::ostream& out) const;

 private:
  std::vector<JobRecord> records_;
};

}  // namespace ear::eard
