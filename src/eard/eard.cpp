#include "eard/eard.hpp"

#include <algorithm>

namespace ear::eard {

void NodeDaemon::set_pstate_limit(simhw::Pstate slowest_allowed) {
  limit_ = slowest_allowed;
  node_->set_cpu_pstate(std::max(last_requested_, limit_));
}

void NodeDaemon::set_freqs(const policies::NodeFreqs& freqs) {
  last_requested_ = freqs.cpu_pstate;
  // Larger index = lower frequency; the EARGM limit is the fastest
  // P-state the node may run.
  node_->set_cpu_pstate(std::max(freqs.cpu_pstate, limit_));
  // Only write the MSR when the window actually changes; the real daemon
  // avoids redundant privileged writes the same way.
  const simhw::UncoreRatioLimit want{.max_freq = freqs.imc_max,
                                     .min_freq = freqs.imc_min};
  if (!(node_->uncore_limit() == want)) {
    node_->set_uncore_limit_all(want);
  }
}

bool NodeDaemon::uncore_writable() {
  if (probed_uncore_) return uncore_writable_;
  probed_uncore_ = true;
  simhw::MsrFile& msr = node_->msr(0);
  const std::uint64_t original = msr.read(simhw::kMsrUncoreRatioLimit);
  // Probe with a one-bin-lower maximum (always a legal encoding).
  auto probe = simhw::UncoreRatioLimit::decode(original);
  probe.max_freq = node_->config().uncore.step_down(probe.max_freq);
  probe.min_freq = node_->config().uncore.min();
  msr.write(simhw::kMsrUncoreRatioLimit, probe.encode());
  uncore_writable_ =
      msr.read(simhw::kMsrUncoreRatioLimit) == probe.encode();
  msr.write(simhw::kMsrUncoreRatioLimit, original);  // restore
  return uncore_writable_;
}

std::uint64_t NodeDaemon::msr_writes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < node_->config().sockets; ++s) {
    total += node_->msr(s).write_count();
  }
  return total;
}

}  // namespace ear::eard
