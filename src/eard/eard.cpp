#include "eard/eard.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ear::eard {

void NodeDaemon::set_pstate_limit(simhw::Pstate slowest_allowed) {
  limit_ = slowest_allowed;
  node_->set_cpu_pstate(std::max(last_requested_, limit_));
}

void NodeDaemon::set_freqs(const policies::NodeFreqs& freqs) {
  last_requested_ = freqs.cpu_pstate;
  // Larger index = lower frequency; the EARGM limit is the fastest
  // P-state the node may run.
  node_->set_cpu_pstate(std::max(freqs.cpu_pstate, limit_));
  // Once the uncore path is known-bad the daemon stops issuing privileged
  // writes it knows will be dropped: the register keeps whatever window
  // the hardware UFS governor is running in (the HW-UFS fallback rung).
  if (!uncore_healthy_) return;
  // Only write the MSR when the window actually changes; the real daemon
  // avoids redundant privileged writes the same way.
  const simhw::UncoreRatioLimit want{.max_freq = freqs.imc_max,
                                     .min_freq = freqs.imc_min};
  if (!(node_->uncore_limit() == want)) {
    node_->set_uncore_limit_all(want);
    if (!verify_uncore_write(want)) {
      // The window is not in force; the policy keeps running against
      // whatever the register holds and the next set_freqs retries (or
      // the unhealthy flag above short-circuits the write path).
      EAR_LOG_DEBUG("eard", "uncore window write not in force after verify");
    }
  }
}

bool NodeDaemon::verify_uncore_write(const simhw::UncoreRatioLimit& want) {
  if (node_->uncore_limit() == want) return true;
  // Read-back mismatch: the write was issued but never landed. Drop the
  // cached writability probe — a register locked after attach looks
  // exactly like this — and re-probe to tell a transient glitch from a
  // lock.
  ++verify_failures_;
  probed_uncore_ = false;
  ++reprobes_;
  if (uncore_writable()) {
    // Transient drop: retry the window once. A second miss will be caught
    // by the next set_freqs round.
    node_->set_uncore_limit_all(want);
    const bool landed = node_->uncore_limit() == want;
    if (!landed) ++verify_failures_;
    return landed;
  }
  uncore_healthy_ = false;
  EAR_LOG_WARN("eard",
               "UNCORE_RATIO_LIMIT writes no longer stick; entering "
               "HW-UFS fallback");
  return false;
}

bool NodeDaemon::uncore_writable() {
  if (probed_uncore_) return uncore_writable_;
  probed_uncore_ = true;
  simhw::MsrFile& msr = node_->msr(0);
  const std::uint64_t original = msr.read(simhw::kMsrUncoreRatioLimit);
  // Probe with a one-bin-lower maximum (always a legal encoding).
  auto probe = simhw::UncoreRatioLimit::decode(original);
  probe.max_freq = node_->config().uncore.step_down(probe.max_freq);
  probe.min_freq = node_->config().uncore.min();
  msr.write(simhw::kMsrUncoreRatioLimit, probe.encode());
  uncore_writable_ =
      msr.read(simhw::kMsrUncoreRatioLimit) == probe.encode();
  msr.write(simhw::kMsrUncoreRatioLimit, original);  // restore
  return uncore_writable_;
}

bool NodeDaemon::reprobe() {
  probed_uncore_ = false;
  ++reprobes_;
  uncore_healthy_ = uncore_writable();
  return uncore_healthy_;
}

std::uint64_t NodeDaemon::msr_writes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < node_->config().sockets; ++s) {
    total += node_->msr(s).write_count();
  }
  return total;
}

}  // namespace ear::eard
