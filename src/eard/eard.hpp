// EARD: the privileged node daemon.
//
// In the real system EARL is an unprivileged library; every P-state
// change, MSR write and energy reading goes through the per-node EAR
// daemon. Keeping that boundary here means the policies and runtime never
// touch SimNode internals directly — they could be pointed at real
// hardware by swapping this class.
#pragma once

#include "metrics/accumulator.hpp"
#include "policies/policy_api.hpp"
#include "simhw/node.hpp"

namespace ear::eard {

class NodeDaemon {
 public:
  explicit NodeDaemon(simhw::SimNode& node) : node_(&node) {}

  /// Apply a policy's frequency selection: P-state plus the uncore window
  /// written to UNCORE_RATIO_LIMIT on every socket. The request is
  /// clamped by any active cluster-manager limit.
  void set_freqs(const policies::NodeFreqs& freqs);

  /// Cluster-manager (EARGM) frequency limit: P-states faster than
  /// `slowest_allowed` are clamped to it. Takes effect immediately and on
  /// every subsequent set_freqs. Pass 0 to remove the limit.
  void set_pstate_limit(simhw::Pstate slowest_allowed);
  [[nodiscard]] simhw::Pstate pstate_limit() const { return limit_; }

  /// Probe whether UNCORE_RATIO_LIMIT is actually writable: some BIOSes
  /// lock the register, and writes are silently dropped. The daemon
  /// performs a write/read-back/restore cycle once and caches the result;
  /// EARL uses it to fall back to hardware UFS (see EarLibrary::attach).
  [[nodiscard]] bool uncore_writable();

  /// Counter/energy snapshot for signature windows.
  [[nodiscard]] metrics::Snapshot snapshot() const {
    return metrics::Snapshot::take(*node_);
  }

  [[nodiscard]] const simhw::SimNode& node() const { return *node_; }
  [[nodiscard]] simhw::Pstate current_pstate() const {
    return node_->cpu_pstate();
  }
  [[nodiscard]] simhw::UncoreRatioLimit uncore_window() const {
    return node_->uncore_limit();
  }
  /// Number of MSR writes issued so far (overhead accounting).
  [[nodiscard]] std::uint64_t msr_writes() const;

 private:
  simhw::SimNode* node_;
  simhw::Pstate limit_ = 0;          // 0 = unconstrained
  simhw::Pstate last_requested_ = 0;  // policy's last request, pre-clamp
  bool probed_uncore_ = false;
  bool uncore_writable_ = true;
};

}  // namespace ear::eard
