// EARD: the privileged node daemon.
//
// In the real system EARL is an unprivileged library; every P-state
// change, MSR write and energy reading goes through the per-node EAR
// daemon. Keeping that boundary here means the policies and runtime never
// touch SimNode internals directly — they could be pointed at real
// hardware by swapping this class.
#pragma once

#include "metrics/accumulator.hpp"
#include "policies/policy_api.hpp"
#include "simhw/node.hpp"

namespace ear::eard {

/// Fault-injection hook on the snapshot path: when installed, every
/// counter snapshot the daemon serves passes through the filter, which
/// may corrupt it or serve a stale copy. Null by default.
class SnapshotFilter {
 public:
  virtual ~SnapshotFilter() = default;
  [[nodiscard]] virtual metrics::Snapshot filter(
      const metrics::Snapshot& clean) = 0;
};

class NodeDaemon {
 public:
  explicit NodeDaemon(simhw::SimNode& node) : node_(&node) {}

  /// Apply a policy's frequency selection: P-state plus the uncore window
  /// written to UNCORE_RATIO_LIMIT on every socket. The request is
  /// clamped by any active cluster-manager limit. Every uncore write is
  /// verified by read-back; a mismatch invalidates the cached
  /// writability probe (see uncore_writable) and either retries once
  /// (transient drop) or marks the uncore path unhealthy (lock).
  void set_freqs(const policies::NodeFreqs& freqs);

  /// Cluster-manager (EARGM) frequency limit: P-states faster than
  /// `slowest_allowed` are clamped to it. Takes effect immediately and on
  /// every subsequent set_freqs. Pass 0 to remove the limit.
  void set_pstate_limit(simhw::Pstate slowest_allowed);
  [[nodiscard]] simhw::Pstate pstate_limit() const { return limit_; }

  /// Probe whether UNCORE_RATIO_LIMIT is actually writable: some BIOSes
  /// lock the register, and writes are silently dropped. The daemon
  /// performs a write/read-back/restore cycle and caches the result; the
  /// cache is invalidated whenever a later write fails its read-back, so
  /// a register locked *after* attach is still noticed. EARL uses it to
  /// fall back to hardware UFS (see EarLibrary::attach).
  [[nodiscard]] bool uncore_writable();

  /// Drop the cached probe and probe again; used by the degradation path
  /// to distinguish a transient write drop from a mid-run lock. Returns
  /// the fresh result and resets the health flag accordingly.
  [[nodiscard]] bool reprobe();

  /// False once the daemon has concluded uncore writes no longer stick
  /// (mid-run lock); set_freqs stops touching the register and EARL
  /// degrades to its HW-UFS / CPU-only fallback.
  [[nodiscard]] bool uncore_ok() const { return uncore_healthy_; }

  /// Counter/energy snapshot for signature windows.
  [[nodiscard]] metrics::Snapshot snapshot() const {
    const metrics::Snapshot clean = metrics::Snapshot::take(*node_);
    return snapshot_filter_ != nullptr ? snapshot_filter_->filter(clean)
                                       : clean;
  }

  /// Install (or clear, with nullptr) the fault-injection snapshot hook.
  /// The filter must outlive its installation.
  void set_snapshot_filter(SnapshotFilter* filter) {
    snapshot_filter_ = filter;
  }

  [[nodiscard]] const simhw::SimNode& node() const { return *node_; }
  [[nodiscard]] simhw::Pstate current_pstate() const {
    return node_->cpu_pstate();
  }
  [[nodiscard]] simhw::UncoreRatioLimit uncore_window() const {
    return node_->uncore_limit();
  }
  /// Number of MSR writes issued so far (overhead accounting).
  [[nodiscard]] std::uint64_t msr_writes() const;

  /// Resilience accounting: read-back mismatches seen and probe re-runs
  /// forced by them (or by reprobe()).
  [[nodiscard]] std::uint64_t verify_failures() const {
    return verify_failures_;
  }
  [[nodiscard]] std::uint64_t reprobes() const { return reprobes_; }

 private:
  /// Read back the window just written and handle a mismatch (retry once
  /// on a transient drop, or mark the uncore path unhealthy on a lock).
  /// Returns whether `want` is in force afterwards.
  [[nodiscard]] bool verify_uncore_write(const simhw::UncoreRatioLimit& want);

  simhw::SimNode* node_;
  SnapshotFilter* snapshot_filter_ = nullptr;
  simhw::Pstate limit_ = 0;          // 0 = unconstrained
  simhw::Pstate last_requested_ = 0;  // policy's last request, pre-clamp
  bool probed_uncore_ = false;
  bool uncore_writable_ = true;
  bool uncore_healthy_ = true;
  std::uint64_t verify_failures_ = 0;
  std::uint64_t reprobes_ = 0;
};

}  // namespace ear::eard
