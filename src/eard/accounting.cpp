#include "eard/accounting.hpp"

#include "common/csv.hpp"
#include "common/error.hpp"

namespace ear::eard {

std::size_t Accounting::job_started(std::uint64_t job_id,
                                    const std::string& app,
                                    const std::string& policy,
                                    std::size_t node_index,
                                    const simhw::SimNode& node) {
  records_.push_back(JobRecord{
      .job_id = job_id,
      .app_name = app,
      .policy_name = policy,
      .node_index = node_index,
      .start_clock_s = node.clock().value,
      .end_clock_s = node.clock().value,
      .start_joules = node.inm().read_joules(),
      .end_joules = node.inm().read_joules(),
  });
  return records_.size() - 1;
}

void Accounting::job_ended(std::size_t record_index,
                           const simhw::SimNode& node) {
  EAR_CHECK(record_index < records_.size());
  JobRecord& r = records_[record_index];
  r.end_clock_s = node.clock().value;
  r.end_joules = node.inm().read_joules();
  EAR_CHECK_MSG(r.end_joules >= r.start_joules,
                "energy counter went backwards");
}

double Accounting::job_energy_j(std::uint64_t job_id) const {
  double total = 0.0;
  for (const auto& r : records_) {
    if (r.job_id == job_id) total += r.energy_j();
  }
  return total;
}

void Accounting::write_csv(std::ostream& out) const {
  common::CsvWriter csv(out);
  csv.header({"job_id", "app", "policy", "node", "elapsed_s", "energy_j",
              "avg_power_w"});
  for (const auto& r : records_) {
    csv.row({std::to_string(r.job_id), r.app_name, r.policy_name,
             std::to_string(r.node_index), common::CsvWriter::num(r.elapsed_s(), 2),
             common::CsvWriter::num(r.energy_j(), 1),
             common::CsvWriter::num(r.avg_power_w(), 2)});
  }
}

}  // namespace ear::eard
