// EarLibrary: the per-architecture runtime factory. Owns the learned
// energy models for one node type and stamps out per-node sessions with
// the configured policy — the equivalent of loading EARL with a policy
// plugin and its coefficient files.
#pragma once

#include <memory>

#include "earl/session.hpp"
#include "models/learning.hpp"

namespace ear::earl {

class EarLibrary {
 public:
  /// Runs the learning phase for `cfg` and prepares factories.
  EarLibrary(const simhw::NodeConfig& cfg, EarlSettings settings);
  /// Reuse an already-learned model set (coefficients are per
  /// architecture; callers cache them across experiments).
  EarLibrary(const simhw::NodeConfig& cfg, EarlSettings settings,
             models::LearnedModels learned);

  /// Attach EARL to a job's node: builds the policy instance and the
  /// session. The session applies the policy default immediately.
  [[nodiscard]] std::unique_ptr<EarlSession> attach(eard::NodeDaemon& daemon,
                                                    bool is_mpi) const;

  [[nodiscard]] const models::LearnedModels& learned() const {
    return learned_;
  }
  [[nodiscard]] const EarlSettings& settings() const { return settings_; }

 private:
  simhw::NodeConfig cfg_;
  EarlSettings settings_;
  models::LearnedModels learned_;
};

}  // namespace ear::earl
