// EARL configuration: which policy and model to run, how often to compute
// signatures, and the loop-detection parameters.
#pragma once

#include <string>

#include "dynais/dynais.hpp"
#include "policies/policy_api.hpp"

namespace ear::earl {

struct EarlSettings {
  std::string policy = "min_energy_eufs";
  std::string model = "avx512";
  policies::PolicySettings policy_settings{};
  /// Minimum signature window ("every 10 or more seconds", §III). The
  /// window closes at the first detected iteration boundary past this.
  double signature_interval_s = 10.0;
  /// Loop detection configuration (MPI applications).
  dynais::Config dynais{};
  /// Non-MPI applications are time-guided with this period.
  double time_guided_period_s = 10.0;
};

}  // namespace ear::earl
