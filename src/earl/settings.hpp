// EARL configuration: which policy and model to run, how often to compute
// signatures, and the loop-detection parameters.
#pragma once

#include <string>

#include "common/units.hpp"
#include "dynais/dynais.hpp"
#include "policies/policy_api.hpp"

namespace ear::earl {

/// Signature screening: windows that are physically implausible or
/// discontinuous against the last accepted signature are rejected instead
/// of being fed to the policy (noisy sensors would otherwise steer the
/// frequency search; cf. the unreliability of analytic models under
/// measurement noise). The bounds are deliberately loose — they must
/// never fire on a clean run.
struct ScreeningSettings {
  bool enabled = true;
  /// Absolute per-node DC power ceiling, watts (Skylake nodes draw a few
  /// hundred watts; anything past this is a sensor fault).
  double max_power_w = 5000.0;
  /// Reject when power jumps by more than this factor (either direction)
  /// relative to the last accepted signature.
  double outlier_factor = 8.0;
  /// Average frequencies above this are counter corruption (no Skylake
  /// core or uncore clock approaches it).
  common::Freq max_plausible_freq = common::Freq::ghz(8.0);
  /// After this many consecutive outliers the new level is accepted as
  /// reality: the state machine re-anchors (policy restart) instead of
  /// starving on a genuine phase change.
  std::size_t reanchor_after = 3;
};

struct EarlSettings {
  std::string policy = "min_energy_eufs";
  std::string model = "avx512";
  policies::PolicySettings policy_settings{};
  ScreeningSettings screening{};
  /// Minimum signature window ("every 10 or more seconds", §III). The
  /// window closes at the first detected iteration boundary past this.
  double signature_interval_s = 10.0;
  /// Loop detection configuration (MPI applications).
  dynais::Config dynais{};
  /// Non-MPI applications are time-guided with this period.
  double time_guided_period_s = 10.0;
};

}  // namespace ear::earl
