#include "earl/library.hpp"

#include "common/log.hpp"
#include "policies/registry.hpp"

namespace ear::earl {

EarLibrary::EarLibrary(const simhw::NodeConfig& cfg, EarlSettings settings)
    : cfg_(cfg),
      settings_(std::move(settings)),
      learned_(models::learn_models(cfg)) {}

EarLibrary::EarLibrary(const simhw::NodeConfig& cfg, EarlSettings settings,
                       models::LearnedModels learned)
    : cfg_(cfg),
      settings_(std::move(settings)),
      learned_(std::move(learned)) {}

namespace {
/// Policies that need to write UNCORE_RATIO_LIMIT, with their CPU-only
/// fallbacks for platforms where the BIOS locked the register.
std::string uncore_fallback(const std::string& policy) {
  if (policy == "min_energy_eufs" || policy == "min_energy_ngufs") {
    return "min_energy";
  }
  if (policy == "min_time_eufs" || policy == "min_time_raise") {
    return "min_time";
  }
  if (policy == "ups" || policy == "duf") return "monitoring";
  return policy;
}
}  // namespace

std::unique_ptr<EarlSession> EarLibrary::attach(eard::NodeDaemon& daemon,
                                                bool is_mpi) const {
  std::string policy_name = settings_.policy;
  // Explicit UFS needs a writable UNCORE_RATIO_LIMIT; on locked platforms
  // EARL degrades to the CPU-only variant instead of searching blindly.
  const std::string fallback = uncore_fallback(policy_name);
  if (fallback != policy_name && !daemon.uncore_writable()) {
    EAR_LOG_WARN("earl",
                 "UNCORE_RATIO_LIMIT is BIOS-locked; %s degrades to %s",
                 policy_name.c_str(), fallback.c_str());
    policy_name = fallback;
  }

  policies::PolicyContext ctx{
      .pstates = cfg_.pstates,
      .uncore = cfg_.uncore,
      .model = models::model_by_name(learned_, settings_.model),
      .settings = settings_.policy_settings,
  };
  auto policy = policies::make_policy(policy_name, ctx);
  auto session = std::make_unique<EarlSession>(daemon, std::move(policy),
                                               settings_, is_mpi);
  // eUFS policies that attached healthy still need a way down: if the
  // register gets locked mid-run the daemon notices via read-back
  // verification and the session swaps to the CPU-only fallback.
  if (uncore_fallback(policy_name) != policy_name) {
    const std::string fb = uncore_fallback(policy_name);
    session->set_fallback_factory([fb, ctx = std::move(ctx)]() {
      return policies::make_policy(fb, ctx);
    });
  }
  return session;
}

}  // namespace ear::earl
