// EarlSession: one EARL instance, i.e. the runtime attached to the node
// master process of a job on one node.
//
// It consumes MPI call events (or time ticks for non-MPI codes), detects
// the iterative structure with DynAIS, closes a signature window every
// >= signature_interval seconds at an iteration boundary, and drives the
// policy through the NODE_POLICY / VALIDATE_POLICY state machine of the
// paper's Code 1.
#pragma once

#include <cstdint>
#include <span>

#include "dynais/dynais.hpp"
#include "eard/eard.hpp"
#include "earl/settings.hpp"
#include "metrics/accumulator.hpp"
#include "policies/policy_api.hpp"

namespace ear::earl {

class EarlSession {
 public:
  /// The session applies the policy's default frequencies on attach, as
  /// EARL does when a job starts.
  EarlSession(eard::NodeDaemon& daemon, policies::PolicyPtr policy,
              EarlSettings settings, bool is_mpi);

  /// MPI path: feed one event from the node-master rank's PMPI stream.
  void on_mpi_call(std::uint32_t event_id);
  /// Convenience: feed a whole per-iteration pattern.
  void on_mpi_calls(std::span<const std::uint32_t> events);

  /// Non-MPI path: the application completed one unit of work; EARL is
  /// time-guided and treats interval-sized windows as iterations.
  void on_time_tick();

  /// Runtime state (the paper's Code 1 states).
  enum class State { kNoLoop, kNodePolicy, kValidatePolicy };
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const metrics::Signature& last_signature() const {
    return last_signature_;
  }
  [[nodiscard]] const policies::Policy& policy() const { return *policy_; }
  [[nodiscard]] std::size_t signatures_computed() const {
    return signatures_;
  }

 private:
  void maybe_close_window();
  void process_signature(const metrics::Signature& sig);

  eard::NodeDaemon* daemon_;
  policies::PolicyPtr policy_;
  EarlSettings settings_;
  bool is_mpi_;
  dynais::Dynais dynais_;
  State state_ = State::kNoLoop;

  metrics::Snapshot window_start_{};
  bool window_open_ = false;
  std::size_t iterations_in_window_ = 0;
  metrics::Signature last_signature_{};
  std::size_t signatures_ = 0;
};

}  // namespace ear::earl
