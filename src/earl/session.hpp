// EarlSession: one EARL instance, i.e. the runtime attached to the node
// master process of a job on one node.
//
// It consumes MPI call events (or time ticks for non-MPI codes), detects
// the iterative structure with DynAIS, closes a signature window every
// >= signature_interval seconds at an iteration boundary, and drives the
// policy through the NODE_POLICY / VALIDATE_POLICY state machine of the
// paper's Code 1.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "dynais/dynais.hpp"
#include "eard/eard.hpp"
#include "earl/settings.hpp"
#include "metrics/accumulator.hpp"
#include "policies/policy_api.hpp"

namespace ear::earl {

class EarlSession {
 public:
  /// The session applies the policy's default frequencies on attach, as
  /// EARL does when a job starts.
  EarlSession(eard::NodeDaemon& daemon, policies::PolicyPtr policy,
              EarlSettings settings, bool is_mpi);

  /// MPI path: feed one event from the node-master rank's PMPI stream.
  void on_mpi_call(std::uint32_t event_id);
  /// Convenience: feed a whole per-iteration pattern.
  void on_mpi_calls(std::span<const std::uint32_t> events);

  /// Non-MPI path: the application completed one unit of work; EARL is
  /// time-guided and treats interval-sized windows as iterations.
  void on_time_tick();

  /// Runtime state (the paper's Code 1 states).
  enum class State { kNoLoop, kNodePolicy, kValidatePolicy };
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const metrics::Signature& last_signature() const {
    return last_signature_;
  }
  [[nodiscard]] const policies::Policy& policy() const { return *policy_; }
  [[nodiscard]] std::size_t signatures_computed() const {
    return signatures_;
  }

  /// Windows that closed but were rejected — either unusable (zero
  /// elapsed, retrograde counters) or screened out as implausible /
  /// outliers — instead of being fed to the policy.
  [[nodiscard]] std::size_t windows_rejected() const { return rejected_; }
  [[nodiscard]] metrics::WindowReject last_reject() const {
    return last_reject_;
  }
  /// Times the state machine re-anchored on a sustained new signature
  /// level (reanchor_after consecutive outliers).
  [[nodiscard]] std::size_t reanchors() const { return reanchors_; }

  /// Mid-run degradation: when the daemon reports that uncore writes no
  /// longer stick, the session swaps in the policy built by this factory
  /// (the CPU-only fallback; see EarLibrary::attach) and restarts the
  /// state machine. Registered once; consumed on first use.
  void set_fallback_factory(std::function<policies::PolicyPtr()> factory) {
    fallback_factory_ = std::move(factory);
  }
  [[nodiscard]] bool degraded() const { return fallbacks_ > 0; }
  [[nodiscard]] std::size_t fallbacks() const { return fallbacks_; }

 private:
  void maybe_close_window();
  void process_signature(const metrics::Signature& sig);
  void note_reject(metrics::WindowReject why);
  [[nodiscard]] bool screen_implausible(const metrics::Signature& sig) const;
  [[nodiscard]] bool screen_outlier(const metrics::Signature& sig) const;
  bool maybe_degrade();

  eard::NodeDaemon* daemon_;
  policies::PolicyPtr policy_;
  EarlSettings settings_;
  bool is_mpi_;
  dynais::Dynais dynais_;
  State state_ = State::kNoLoop;

  metrics::Snapshot window_start_{};
  bool window_open_ = false;
  std::size_t iterations_in_window_ = 0;
  metrics::Signature last_signature_{};
  std::size_t signatures_ = 0;

  std::size_t rejected_ = 0;
  metrics::WindowReject last_reject_ = metrics::WindowReject::kNone;
  std::size_t outlier_streak_ = 0;
  std::size_t reanchors_ = 0;
  std::function<policies::PolicyPtr()> fallback_factory_;
  std::size_t fallbacks_ = 0;
};

}  // namespace ear::earl
