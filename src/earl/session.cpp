#include "earl/session.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace ear::earl {

EarlSession::EarlSession(eard::NodeDaemon& daemon, policies::PolicyPtr policy,
                         EarlSettings settings, bool is_mpi)
    : daemon_(&daemon),
      policy_(std::move(policy)),
      settings_(std::move(settings)),
      is_mpi_(is_mpi),
      dynais_(settings_.dynais) {
  EAR_CHECK_MSG(policy_ != nullptr, "session requires a policy");
  daemon_->set_freqs(policy_->default_freqs());
  state_ = State::kNoLoop;
}

void EarlSession::on_mpi_call(std::uint32_t event_id) {
  EAR_CHECK_MSG(is_mpi_, "MPI events on a non-MPI session");
  const auto result = dynais_.push(event_id);
  switch (result.status) {
    case dynais::Status::kNewLoop:
      // A loop was just detected: open the first measurement window.
      window_start_ = daemon_->snapshot();
      window_open_ = true;
      iterations_in_window_ = 0;
      if (state_ == State::kNoLoop) state_ = State::kNodePolicy;
      break;
    case dynais::Status::kNewIteration:
      if (!window_open_) {
        window_start_ = daemon_->snapshot();
        window_open_ = true;
        iterations_in_window_ = 0;
        break;
      }
      ++iterations_in_window_;
      maybe_close_window();
      break;
    case dynais::Status::kEndLoop:
      // Structure broke (phase change / non-iterative section): drop the
      // window; detection will re-open one.
      window_open_ = false;
      iterations_in_window_ = 0;
      break;
    case dynais::Status::kNoLoop:
    case dynais::Status::kInLoop:
      break;
  }
}

void EarlSession::on_mpi_calls(std::span<const std::uint32_t> events) {
  for (const auto e : events) on_mpi_call(e);
}

void EarlSession::on_time_tick() {
  EAR_CHECK_MSG(!is_mpi_, "time ticks on an MPI session");
  if (!window_open_) {
    window_start_ = daemon_->snapshot();
    window_open_ = true;
    iterations_in_window_ = 0;
    if (state_ == State::kNoLoop) state_ = State::kNodePolicy;
    return;
  }
  ++iterations_in_window_;
  maybe_close_window();
}

void EarlSession::maybe_close_window() {
  const metrics::Snapshot now = daemon_->snapshot();
  const double elapsed = now.clock_s - window_start_.clock_s;
  const double interval = is_mpi_ ? settings_.signature_interval_s
                                  : settings_.time_guided_period_s;
  if (elapsed < interval || iterations_in_window_ == 0) return;

  metrics::WindowReject why = metrics::WindowReject::kNone;
  const metrics::Signature sig = metrics::compute_signature(
      window_start_, now, iterations_in_window_, &why);
  window_start_ = now;
  iterations_in_window_ = 0;
  // The daemon may have concluded mid-run that uncore writes no longer
  // stick; swap to the fallback policy before anything else consumes the
  // window (the lock must be noticed even while windows are corrupted).
  if (maybe_degrade()) return;
  if (!sig.valid) {
    note_reject(why == metrics::WindowReject::kNone
                    ? metrics::WindowReject::kNoSignal
                    : why);
    return;
  }
  if (settings_.screening.enabled) {
    if (screen_implausible(sig)) {
      note_reject(metrics::WindowReject::kImplausible);
      return;
    }
    if (signatures_ > 0 && screen_outlier(sig)) {
      ++outlier_streak_;
      if (outlier_streak_ < settings_.screening.reanchor_after) {
        note_reject(metrics::WindowReject::kOutlier);
        return;
      }
      // The "outlier" level has persisted: treat it as the new reality
      // and re-anchor the Fig. 2 state machine on it rather than starve
      // the policy on a genuine phase change.
      outlier_streak_ = 0;
      ++reanchors_;
      policy_->restart();
      state_ = State::kNodePolicy;
      EAR_LOG_INFO("earl",
                   "signature level shifted for good; re-anchoring at "
                   "%.0f W",
                   sig.dc_power_w);
    } else {
      outlier_streak_ = 0;
    }
  }
  last_signature_ = sig;
  ++signatures_;
  process_signature(sig);
}

void EarlSession::note_reject(metrics::WindowReject why) {
  ++rejected_;
  last_reject_ = why;
  EAR_LOG_INFO("earl", "window rejected (%s); %zu rejected so far",
               metrics::to_string(why), rejected_);
}

bool EarlSession::screen_implausible(const metrics::Signature& sig) const {
  const ScreeningSettings& s = settings_.screening;
  return sig.dc_power_w > s.max_power_w ||
         sig.avg_cpu_freq > s.max_plausible_freq ||
         sig.avg_imc_freq > s.max_plausible_freq;
}

bool EarlSession::screen_outlier(const metrics::Signature& sig) const {
  const double factor = settings_.screening.outlier_factor;
  const double ref = last_signature_.dc_power_w;
  if (ref <= 0.0) return false;
  return sig.dc_power_w > ref * factor || sig.dc_power_w < ref / factor;
}

bool EarlSession::maybe_degrade() {
  if (!fallback_factory_ || daemon_->uncore_ok()) return false;
  // The daemon stopped trusting the uncore register (mid-run lock): the
  // eUFS search would steer a window nobody applies. Degrade to the
  // CPU-only fallback policy and restart the state machine on it.
  policy_ = fallback_factory_();
  fallback_factory_ = nullptr;
  ++fallbacks_;
  EAR_LOG_WARN("earl",
               "uncore writes stopped sticking mid-run; degrading to %s",
               policy_->name().c_str());
  daemon_->set_freqs(policy_->default_freqs());
  state_ = State::kNodePolicy;
  return true;
}

void EarlSession::process_signature(const metrics::Signature& sig) {
  // EARD shares the actually-applied P-state and any EARGM limit before
  // the policy runs, so projections anchor on reality even when the
  // cluster manager clamped the last request.
  policy_->sync_constraints(daemon_->current_pstate(),
                            daemon_->pstate_limit());
  // The paper's Code 1 state machine.
  switch (state_) {
    case State::kNoLoop:
      state_ = State::kNodePolicy;
      [[fallthrough]];
    case State::kNodePolicy: {
      policies::NodeFreqs freqs;
      const policies::PolicyState next = policy_->apply(sig, freqs);
      daemon_->set_freqs(freqs);
      if (next == policies::PolicyState::kReady) {
        state_ = State::kValidatePolicy;
      }
      EAR_LOG_DEBUG("earl", "policy %s -> pstate %zu imc_max %s (%s)",
                    policy_->name().c_str(), freqs.cpu_pstate,
                    freqs.imc_max.str().c_str(),
                    next == policies::PolicyState::kReady ? "READY"
                                                          : "CONTINUE");
      break;
    }
    case State::kValidatePolicy: {
      if (!policy_->validate(sig)) {
        EAR_LOG_DEBUG("earl", "validation failed; reverting to defaults");
        policy_->restart();
        daemon_->set_freqs(policy_->default_freqs());
        state_ = State::kNodePolicy;
      }
      break;
    }
  }
}

}  // namespace ear::earl
